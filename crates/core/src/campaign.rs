//! The assessment campaign runner: every use case × version × mode, with
//! monitoring — the machinery behind the paper's Tables II/III and
//! Figs. 2/4.

use crate::error::{panic_payload, CampaignError, CellId, CellOutcome};
use crate::injector::ArbitraryAccessInjector;
use crate::monitor::SecurityViolation;
use crate::report::{TextTable, CHECK, SHIELD};
use crate::scenario::{Mode, UseCase};
use guestos::{BootError, World, WorldBuilder};
use hvsim::XenVersion;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Builds a fresh world for one campaign cell: `(version,
/// injector_enabled)` — the paper keeps everything else identical across
/// runs ("the build and experimental environment are kept the same",
/// §V-B). Shared across worker threads, hence `Arc + Send + Sync`.
/// Boot failures are data: the campaign records them per cell instead of
/// aborting, and retries transient ones under its retry budget.
pub type WorldFactory = Arc<dyn Fn(XenVersion, bool) -> Result<World, BootError> + Send + Sync>;

/// The default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The world used throughout the evaluation: privileged dom0 (`xen3`)
/// plus guests `xen2` and `guest03`; `guest03` is the compromised guest
/// the exploits run in.
///
/// # Errors
///
/// Propagates [`BootError`] from world construction.
pub fn standard_world(version: XenVersion, injector: bool) -> Result<World, BootError> {
    WorldBuilder::new(version)
        .injector(injector)
        .guest("xen2", 64)
        .guest("guest03", 64)
        .build()
}

/// Locks a mutex, recovering the data from a poisoned lock. Cell bodies
/// run under their own panic boundary, so a poisoned slot can only mean
/// a panic in the tiny bookkeeping window around it — the data is a
/// plain enum that is always in a consistent state, so recovery is safe
/// and one crashed worker can never wedge result collection.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Name of the attacker guest in the standard world.
pub const ATTACKER_GUEST: &str = "guest03";

/// One campaign cell: a use case run in one mode on one version.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Use-case name (e.g. `XSA-212-crash`).
    pub use_case: String,
    /// The abusive functionality of its intrusion model (for Table II).
    pub abusive_functionality: String,
    /// Version under test.
    pub version: XenVersion,
    /// Exploit or injection.
    pub mode: Mode,
    /// Whether the erroneous state was induced.
    pub erroneous_state: bool,
    /// Violations observed afterwards.
    pub violations: Vec<SecurityViolation>,
    /// State induced but no violation — the system *handled* it (the
    /// shield of Table III).
    pub handled: bool,
    /// The run's log.
    pub notes: Vec<String>,
    /// What went wrong, as the typed campaign taxonomy: a failed
    /// injection attempt (assessment data), or a harness failure (boot,
    /// monitor, crash, deadline).
    pub error: Option<CampaignError>,
    /// How far the cell got: completed, boot-failed, crashed, or
    /// timed out.
    pub outcome: CellOutcome,
    /// World-boot attempts consumed by this cell (1 unless transient
    /// boot failures were retried).
    pub attempts: u32,
    /// Wall-clock time spent on this cell (world acquisition + run +
    /// monitoring), in microseconds. The only non-deterministic field;
    /// [`CampaignReport::normalized`] zeroes it for run-to-run
    /// comparisons.
    pub wall_time_us: u64,
    /// Hypercalls executed while running this cell (deterministic for a
    /// given configuration).
    pub hypercalls: u64,
}

impl CellResult {
    /// `true` if at least one security violation was observed.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }

    /// `true` when the harness (not the system under test) degraded on
    /// this cell: it crashed, timed out, never booted, or lost part of
    /// its observation. Failed injection attempts are *not* degradation
    /// — they are the paper's fixed-version data points.
    pub fn degraded(&self) -> bool {
        self.outcome.is_degraded()
            || self.error.as_ref().is_some_and(CampaignError::is_harness_failure)
    }
}

/// A complete campaign report.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CampaignReport {
    cells: Vec<CellResult>,
}

impl CampaignReport {
    /// Builds a report from pre-computed cells (used by the benchmark
    /// layer and by report deserialization).
    pub fn from_cells(cells: Vec<CellResult>) -> Self {
        Self { cells }
    }

    /// All cells.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// Looks up one cell.
    pub fn cell(&self, use_case: &str, version: XenVersion, mode: Mode) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.use_case == use_case && c.version == version && c.mode == mode)
    }

    /// Iterates the first cell of each use case, in campaign order — the
    /// per-use-case anchor rows shared by the Table II/III and Fig. 4
    /// renderers.
    pub fn first_cell_per_use_case(&self) -> impl Iterator<Item = &CellResult> {
        let mut seen = BTreeSet::new();
        self.cells.iter().filter(move |c| seen.insert(c.use_case.clone()))
    }

    /// A copy with every wall-clock timing zeroed. Timing is the only
    /// non-deterministic part of a report; the normalized form is
    /// byte-identical across runs and worker counts for the same
    /// configuration.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let mut report = self.clone();
        for cell in &mut report.cells {
            cell.wall_time_us = 0;
        }
        report
    }

    /// Total wall-clock time across all cells, in microseconds.
    pub fn total_wall_time_us(&self) -> u64 {
        self.cells.iter().map(|c| c.wall_time_us).sum()
    }

    /// Total hypercalls executed across all cells.
    pub fn total_hypercalls(&self) -> u64 {
        self.cells.iter().map(|c| c.hypercalls).sum()
    }

    /// Cells that completed cleanly (including failed injection
    /// attempts, which are assessment data).
    pub fn completed_cells(&self) -> impl Iterator<Item = &CellResult> {
        self.cells.iter().filter(|c| !c.degraded())
    }

    /// Cells on which the harness degraded: crashed, timed out, failed
    /// to boot, or lost part of their observation.
    pub fn degraded_cells(&self) -> impl Iterator<Item = &CellResult> {
        self.cells.iter().filter(|c| c.degraded())
    }

    /// `true` when any cell degraded — the CLI maps this to exit code 2.
    pub fn is_degraded(&self) -> bool {
        self.cells.iter().any(CellResult::degraded)
    }

    /// `true` when any cell observed a security violation — the CLI
    /// maps this to exit code 1 (when nothing degraded).
    pub fn has_violations(&self) -> bool {
        self.cells.iter().any(CellResult::violated)
    }

    /// Renders Table II: use case → abusive functionality.
    pub fn render_table2(&self) -> String {
        let mut table = TextTable::new(["Use Case", "Abusive Functionality"])
            .title("TABLE II: use cases and their abusive functionality");
        for c in self.first_cell_per_use_case() {
            table.row([c.use_case.clone(), c.abusive_functionality.clone()]);
        }
        table.to_string()
    }

    /// Renders Table III: the injection campaign on the non-vulnerable
    /// versions. A check marks a correctly induced property; the shield
    /// marks an erroneous state the system handled.
    pub fn render_table3(&self) -> String {
        let mut table = TextTable::new([
            "Use Case",
            "4.8 Err. State",
            "4.8 Sec. Viol.",
            "4.13 Err. State",
            "4.13 Sec. Viol.",
        ])
        .title(
            "TABLE III: injection campaign in non-vulnerable versions \
             (check = property induced, shield = erroneous state handled)",
        );
        for c in self.first_cell_per_use_case() {
            let mut row = vec![c.use_case.clone()];
            for version in [XenVersion::V4_8, XenVersion::V4_13] {
                match self.cell(&c.use_case, version, Mode::Injection) {
                    Some(cell) => {
                        row.push(if cell.erroneous_state { CHECK } else { "x" }.to_owned());
                        row.push(
                            if cell.violated() {
                                CHECK.to_owned()
                            } else if cell.handled {
                                SHIELD.to_owned()
                            } else {
                                "x".to_owned()
                            },
                        );
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
            }
            table.row(row);
        }
        table.to_string()
    }

    /// Renders the Fig. 4 comparison: on the vulnerable version, does the
    /// injection reproduce the exploit's erroneous state *and* security
    /// violation?
    pub fn render_fig4(&self) -> String {
        let mut table = TextTable::new([
            "Use Case",
            "exploit err/viol (4.6)",
            "injection err/viol (4.6)",
            "equivalent",
        ])
        .title("FIG. 4: experimental validation on the vulnerable version (Xen 4.6)");
        for c in self.first_cell_per_use_case() {
            let e = self.cell(&c.use_case, XenVersion::V4_6, Mode::Exploit);
            let i = self.cell(&c.use_case, XenVersion::V4_6, Mode::Injection);
            let fmt_cell = |c: Option<&CellResult>| match c {
                Some(c) => format!(
                    "{}/{}",
                    if c.erroneous_state { CHECK } else { "x" },
                    if c.violated() { CHECK } else { "x" }
                ),
                None => "-".into(),
            };
            let equivalent = match (e, i) {
                (Some(e), Some(i)) => {
                    e.erroneous_state == i.erroneous_state && e.violated() == i.violated()
                }
                _ => false,
            };
            table.row([
                c.use_case.clone(),
                fmt_cell(e),
                fmt_cell(i),
                if equivalent { "yes" } else { "NO" }.to_owned(),
            ]);
        }
        table.to_string()
    }

    /// Renders the Fig. 2 methodology view for one use case on one
    /// version: the traditional path vs the injection path.
    pub fn render_fig2(&self, use_case: &str, version: XenVersion) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "FIG. 2: methodology paths for {use_case} on Xen {version}\n"
        ));
        for (mode, label) in [
            (Mode::Exploit, "traditional: attack -> vulnerability -> intrusion"),
            (Mode::Injection, "injection:   intrusion injector (intrusion model)"),
        ] {
            if let Some(c) = self.cell(use_case, version, mode) {
                let terminal = if c.violated() {
                    "security violation"
                } else if c.handled {
                    "erroneous state handled"
                } else {
                    "no erroneous state"
                };
                out.push_str(&format!(
                    "  {label} -> erroneous state: {} -> {terminal}\n",
                    if c.erroneous_state { "induced" } else { "not induced" },
                ));
            }
        }
        out
    }

    /// Serializes the report to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (unreachable for this data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&self.cells)
    }
}

/// A machine-readable campaign throughput record — what the Table III
/// regenerator writes to `BENCH_campaign.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignThroughput {
    /// Cells the campaign scheduled.
    pub cells: usize,
    /// Cells that completed cleanly (throughput counts only these).
    pub completed_cells: usize,
    /// Cells on which the harness degraded (crashed / timed out /
    /// boot-failed / partial observation).
    pub degraded_cells: usize,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end elapsed wall-clock time, in microseconds.
    pub elapsed_us: u64,
    /// *Completed* cells per second of elapsed time — degraded cells do
    /// not inflate throughput, so BENCH trajectories stay comparable
    /// across clean and degraded runs.
    pub cells_per_sec: f64,
    /// Sum of per-cell wall-clock times (≈ CPU time across workers).
    pub total_cell_wall_time_us: u64,
    /// Hypercalls executed across all cells.
    pub total_hypercalls: u64,
}

impl CampaignThroughput {
    /// Derives the record from a report, the worker count, and the
    /// elapsed run time.
    pub fn new(report: &CampaignReport, workers: usize, elapsed_us: u64) -> Self {
        let elapsed_us = elapsed_us.max(1);
        let cells = report.cells().len();
        let degraded_cells = report.degraded_cells().count();
        let completed_cells = cells - degraded_cells;
        Self {
            cells,
            completed_cells,
            degraded_cells,
            workers,
            elapsed_us,
            cells_per_sec: completed_cells as f64 * 1_000_000.0 / elapsed_us as f64,
            total_cell_wall_time_us: report.total_wall_time_us(),
            total_hypercalls: report.total_hypercalls(),
        }
    }
}

/// Fault-containment and scheduling knobs shared by campaign runs.
#[derive(Clone, Debug, Default)]
pub struct CampaignConfig {
    /// Worker threads; `None` means one per hardware thread.
    pub jobs: Option<usize>,
    /// Boot each `(version, injector)` base world once and clone it per
    /// cell (on by default via [`Campaign::new`]).
    pub reuse_snapshots: bool,
    /// Per-cell deadline enforced by a watchdog thread; overrunning
    /// cells are reported [`CellOutcome::TimedOut`]. `None` disables the
    /// watchdog. The watchdog is cooperative: it re-labels the slot and
    /// lets the campaign finish, but a cell body that never returns
    /// still holds its worker thread until it does.
    pub cell_deadline: Option<Duration>,
    /// Extra boot attempts for *transient* failures (`-ENOMEM`/`-EBUSY`)
    /// per cell; `0` means fail on the first error.
    pub retries: u32,
}

/// The campaign: use cases × versions × modes.
pub struct Campaign {
    use_cases: Vec<Box<dyn UseCase>>,
    versions: Vec<XenVersion>,
    modes: Vec<Mode>,
    factory: WorldFactory,
    config: CampaignConfig,
}

impl Campaign {
    /// A campaign over all three versions and both modes, using the
    /// standard world, snapshot reuse, and one worker per hardware
    /// thread.
    pub fn new() -> Self {
        Self {
            use_cases: Vec::new(),
            versions: XenVersion::ALL.to_vec(),
            modes: vec![Mode::Exploit, Mode::Injection],
            factory: Arc::new(standard_world),
            config: CampaignConfig { reuse_snapshots: true, ..CampaignConfig::default() },
        }
    }

    /// Adds a use case.
    #[must_use]
    pub fn with_use_case(mut self, uc: Box<dyn UseCase>) -> Self {
        self.use_cases.push(uc);
        self
    }

    /// Restricts the versions under test.
    #[must_use]
    pub fn versions(mut self, versions: &[XenVersion]) -> Self {
        self.versions = versions.to_vec();
        self
    }

    /// Restricts the modes.
    #[must_use]
    pub fn modes(mut self, modes: &[Mode]) -> Self {
        self.modes = modes.to_vec();
        self
    }

    /// Replaces the world factory.
    #[must_use]
    pub fn world_factory(mut self, factory: WorldFactory) -> Self {
        self.factory = factory;
        self
    }

    /// Sets the worker count used by [`Campaign::run`]. `0` or unset
    /// means one worker per hardware thread.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = (jobs > 0).then_some(jobs);
        self
    }

    /// Enables or disables world-snapshot reuse. When enabled (the
    /// default), each `(version, injector_enabled)` base world boots
    /// once and every cell starts from a clone of it; when disabled,
    /// every cell boots its own world through the factory, like the
    /// paper's original setup. Booting is deterministic, so both paths
    /// produce identical reports.
    #[must_use]
    pub fn reuse_snapshots(mut self, reuse: bool) -> Self {
        self.config.reuse_snapshots = reuse;
        self
    }

    /// Sets the per-cell deadline (see [`CampaignConfig::cell_deadline`]).
    #[must_use]
    pub fn cell_deadline(mut self, deadline: Duration) -> Self {
        self.config.cell_deadline = Some(deadline);
        self
    }

    /// Allows up to `retries` extra boot attempts per cell for transient
    /// failures (see [`CampaignConfig::retries`]).
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.config.retries = retries;
        self
    }

    /// Replaces the whole configuration at once.
    #[must_use]
    pub fn config(mut self, config: CampaignConfig) -> Self {
        self.config = config;
        self
    }

    /// Runs every cell with the configured worker count. Exploit cells
    /// run on a stock build, injection cells on an injector build,
    /// exactly like the paper's setup; each cell gets a pristine world
    /// (a snapshot clone, or a fresh boot when snapshot reuse is off),
    /// runs its scenario, then monitors for violations.
    ///
    /// The run is fail-soft: a panicking world, injector, or monitor, a
    /// failed boot, or a deadline overrun degrades *that cell* (recorded
    /// in its [`CellOutcome`] / [`CampaignError`]) and the rest of the
    /// campaign completes.
    pub fn run(&self) -> CampaignReport {
        self.run_with_jobs(self.config.jobs.unwrap_or_else(default_jobs))
    }

    /// Runs every cell on exactly `jobs` worker threads. Cell results
    /// are slot-indexed, so the report's cell order — and, because each
    /// cell starts from a pristine world, the cells themselves — are
    /// identical for every worker count.
    pub fn run_with_jobs(&self, jobs: usize) -> CampaignReport {
        let work: Vec<(usize, XenVersion, Mode)> = self
            .use_cases
            .iter()
            .enumerate()
            .flat_map(|(uc, _)| {
                self.versions.iter().flat_map(move |&version| {
                    self.modes.iter().map(move |&mode| (uc, version, mode))
                })
            })
            .collect();
        if work.is_empty() {
            return CampaignReport::default();
        }

        // Boot each required (version, injector_enabled) base world once;
        // cells then start from clones instead of re-booting. A base
        // world that fails to boot (or panics the factory) poisons only
        // the cells that need it — the error is cloned into each.
        let mut snapshots: BTreeMap<(XenVersion, bool), Result<World, CampaignError>> =
            BTreeMap::new();
        if self.config.reuse_snapshots {
            for &(_, version, mode) in &work {
                snapshots.entry((version, mode == Mode::Injection)).or_insert_with(|| {
                    boot_world(&self.factory, version, mode == Mode::Injection, self.config.retries)
                        .0
                });
            }
        }

        let next = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let slots: Vec<Mutex<CellSlot>> =
            work.iter().map(|_| Mutex::new(CellSlot::Pending)).collect();
        let workers = jobs.max(1).min(work.len());
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&(uc, version, mode)) = work.get(i) else {
                        break;
                    };
                    let started = Instant::now();
                    *lock_recover(&slots[i]) = CellSlot::Running { started };
                    let snapshot = snapshots.get(&(version, mode == Mode::Injection));
                    let cell =
                        self.run_cell_contained(&*self.use_cases[uc], version, mode, snapshot);
                    let mut slot = lock_recover(&slots[i]);
                    // The watchdog may have abandoned this cell while it
                    // ran; a finished-but-late result is also re-labelled
                    // here so deadline enforcement does not depend on
                    // watchdog scheduling.
                    let overran = self
                        .config
                        .cell_deadline
                        .is_some_and(|deadline| started.elapsed() > deadline);
                    if !matches!(*slot, CellSlot::TimedOut) && !overran {
                        *slot = CellSlot::Done(Box::new(cell));
                    } else {
                        *slot = CellSlot::TimedOut;
                    }
                    drop(slot);
                    completed.fetch_add(1, Ordering::Release);
                });
            }
            if let Some(deadline) = self.config.cell_deadline {
                let slots = &slots;
                let completed = &completed;
                let total = work.len();
                scope.spawn(move || watchdog(slots, completed, total, deadline));
            }
        });

        CampaignReport {
            cells: work
                .iter()
                .zip(slots)
                .map(|(&(uc, version, mode), slot)| {
                    match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                        CellSlot::Done(cell) => *cell,
                        CellSlot::TimedOut => {
                            self.timed_out_cell(&*self.use_cases[uc], version, mode)
                        }
                        // Unreachable — cell bodies are contained, so a
                        // worker always finalizes its slot — but a lost
                        // slot degrades one cell, never the collection.
                        CellSlot::Pending | CellSlot::Running { .. } => self.degraded_cell(
                            &*self.use_cases[uc],
                            version,
                            mode,
                            CampaignError::HarnessCrash {
                                payload: "worker abandoned the cell".to_owned(),
                            },
                            1,
                            0,
                        ),
                    }
                })
                .collect(),
        }
    }

    /// Runs one cell on the calling thread with panic containment
    /// around each phase: world acquisition, the scenario body, and
    /// monitoring. Never panics; every failure becomes a typed cell.
    fn run_cell_contained(
        &self,
        uc: &dyn UseCase,
        version: XenVersion,
        mode: Mode,
        snapshot: Option<&Result<World, CampaignError>>,
    ) -> CellResult {
        let start = Instant::now();
        // Phase 1: world acquisition. `AssertUnwindSafe` is sound here:
        // the base snapshot is only read through `&` during `Clone`, and
        // a partially-cloned world is dropped inside the boundary — no
        // broken state can leak to other cells.
        let (world, attempts) = match snapshot {
            Some(Ok(base)) => (
                catch_unwind(AssertUnwindSafe(|| base.clone())).map_err(|p| {
                    CampaignError::HarnessCrash { payload: panic_payload(p.as_ref()) }
                }),
                1,
            ),
            Some(Err(e)) => (Err(e.clone()), 1),
            None => boot_world(&self.factory, version, mode == Mode::Injection, self.config.retries),
        };
        let mut world = match world {
            Ok(world) => world,
            Err(error) => {
                let wall = start.elapsed().as_micros() as u64;
                return self.degraded_cell(uc, version, mode, error, attempts, wall);
            }
        };
        let base_hypercalls = world.hv().hypercall_count();
        let Some(attacker) =
            world.domain_by_name(ATTACKER_GUEST).or_else(|| world.domains().last().copied())
        else {
            let error = CampaignError::Boot {
                message: "world booted with no domains".to_owned(),
                attempts,
            };
            let wall = start.elapsed().as_micros() as u64;
            return self.degraded_cell(uc, version, mode, error, attempts, wall);
        };

        // Phase 2: the scenario body. The world is owned by this cell,
        // so a panicking exploit/injector takes only its own clone down.
        let outcome = match catch_unwind(AssertUnwindSafe(|| match mode {
            Mode::Exploit => uc.run_exploit(&mut world, attacker),
            Mode::Injection => uc.run_injection(&mut world, attacker, &ArbitraryAccessInjector),
        })) {
            Ok(outcome) => outcome,
            Err(p) => {
                let error = CampaignError::HarnessCrash { payload: panic_payload(p.as_ref()) };
                let wall = start.elapsed().as_micros() as u64;
                return self.degraded_cell(uc, version, mode, error, attempts, wall);
            }
        };

        // Phase 3: monitoring, with per-detector containment — one
        // panicking detector costs its own observations, not the cell's.
        let (observation, detector_failures) =
            match catch_unwind(AssertUnwindSafe(|| uc.monitor(&world, attacker).observe_contained(&world)))
            {
                Ok(observed) => observed,
                Err(p) => {
                    let error = CampaignError::Monitor { message: panic_payload(p.as_ref()) };
                    let wall = start.elapsed().as_micros() as u64;
                    return self.degraded_cell(uc, version, mode, error, attempts, wall);
                }
            };
        let error = if detector_failures.is_empty() {
            outcome.error.map(|message| CampaignError::Injection { message })
        } else {
            Some(CampaignError::Monitor { message: detector_failures.join("; ") })
        };

        let handled = outcome.erroneous_state && observation.is_clean();
        CellResult {
            use_case: uc.name().to_owned(),
            abusive_functionality: uc.intrusion_model().abusive_functionality.label().to_owned(),
            version,
            mode,
            erroneous_state: outcome.erroneous_state,
            violations: observation.violations,
            handled,
            notes: outcome.notes,
            error,
            outcome: CellOutcome::Completed,
            attempts,
            wall_time_us: 0, // patched below, after the clock stops
            hypercalls: world.hv().hypercall_count().saturating_sub(base_hypercalls),
        }
        .with_wall_time(start.elapsed().as_micros() as u64)
    }

    /// A cell record for a harness failure (boot / crash / monitor).
    fn degraded_cell(
        &self,
        uc: &dyn UseCase,
        version: XenVersion,
        mode: Mode,
        error: CampaignError,
        attempts: u32,
        wall_time_us: u64,
    ) -> CellResult {
        let cell_id =
            || CellId { use_case: uc.name().to_owned(), version, mode };
        let outcome = match &error {
            CampaignError::Boot { .. } => CellOutcome::BootFailed,
            CampaignError::Deadline { deadline_us } => {
                CellOutcome::TimedOut { deadline_us: *deadline_us }
            }
            CampaignError::HarnessCrash { payload } => {
                CellOutcome::Crashed { payload: payload.clone(), cell: cell_id() }
            }
            CampaignError::Monitor { message } => {
                CellOutcome::Crashed { payload: message.clone(), cell: cell_id() }
            }
            CampaignError::Injection { .. } => CellOutcome::Completed,
        };
        CellResult {
            use_case: uc.name().to_owned(),
            abusive_functionality: uc.intrusion_model().abusive_functionality.label().to_owned(),
            version,
            mode,
            erroneous_state: false,
            violations: Vec::new(),
            handled: false,
            notes: Vec::new(),
            error: Some(error),
            outcome,
            attempts,
            wall_time_us,
            hypercalls: 0,
        }
    }

    /// A cell record for a watchdog-abandoned cell.
    fn timed_out_cell(&self, uc: &dyn UseCase, version: XenVersion, mode: Mode) -> CellResult {
        let deadline_us =
            self.config.cell_deadline.map_or(0, |d| d.as_micros() as u64);
        let mut cell = self.degraded_cell(
            uc,
            version,
            mode,
            CampaignError::Deadline { deadline_us },
            1,
            deadline_us,
        );
        cell.outcome = CellOutcome::TimedOut { deadline_us };
        cell
    }
}

/// One result slot's lifecycle, watched by the deadline watchdog.
enum CellSlot {
    /// Not picked up by a worker yet.
    Pending,
    /// A worker entered the cell body at `started`.
    Running { started: Instant },
    /// The watchdog (or the worker's own post-check) abandoned the cell.
    TimedOut,
    /// The cell finished in time.
    Done(Box<CellResult>),
}

/// Boots one world through the factory with panic containment and the
/// bounded retry policy: transient failures (`BootError::is_transient`)
/// are retried up to `retries` extra times; deterministic failures and
/// factory panics fail immediately. Returns the attempts consumed.
fn boot_world(
    factory: &WorldFactory,
    version: XenVersion,
    injector: bool,
    retries: u32,
) -> (Result<World, CampaignError>, u32) {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| factory(version, injector))) {
            Ok(Ok(world)) => return (Ok(world), attempts),
            Ok(Err(boot)) if boot.is_transient() && attempts <= retries => {}
            Ok(Err(boot)) => {
                return (
                    Err(CampaignError::Boot { message: boot.to_string(), attempts }),
                    attempts,
                )
            }
            Err(p) => {
                return (
                    Err(CampaignError::HarnessCrash { payload: panic_payload(p.as_ref()) }),
                    attempts,
                )
            }
        }
    }
}

/// The deadline watchdog: polls running slots and re-labels any that
/// overran the deadline `TimedOut`, so result collection can report them
/// without waiting on the stuck worker. Cooperative by design —
/// `std::thread::scope` still joins every worker, so a cell body that
/// *never* returns holds campaign exit; the watchdog's job is to keep
/// the *report* complete and correctly labelled.
fn watchdog(
    slots: &[Mutex<CellSlot>],
    completed: &AtomicUsize,
    total: usize,
    deadline: Duration,
) {
    let poll = (deadline / 10).max(Duration::from_millis(1));
    while completed.load(Ordering::Acquire) < total {
        for slot in slots {
            let mut slot = lock_recover(slot);
            if let CellSlot::Running { started } = *slot {
                if started.elapsed() > deadline {
                    *slot = CellSlot::TimedOut;
                }
            }
        }
        std::thread::sleep(poll);
    }
}

impl CellResult {
    fn with_wall_time(mut self, wall_time_us: u64) -> Self {
        self.wall_time_us = wall_time_us;
        self
    }
}

impl Default for Campaign {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erroneous_state::ErroneousStateSpec;
    use crate::injector::Injector;
    use crate::model::IntrusionModel;
    use crate::scenario::ScenarioOutcome;
    use crate::taxonomy::AbusiveFunctionality;
    use hvsim_mem::DomainId;

    /// A synthetic use case: injects IDT corruption and triggers a fault.
    struct CrashCase;

    impl UseCase for CrashCase {
        fn name(&self) -> &'static str {
            "synthetic-crash"
        }

        fn intrusion_model(&self) -> IntrusionModel {
            IntrusionModel::guest_hypercall_memory(
                "IM-test",
                AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
                &["XSA-212"],
            )
        }

        fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
            // "Exploit" stand-in: only works where XSA-212 exists.
            let vulnerable = world.hv().version().is_vulnerable();
            if !vulnerable {
                return ScenarioOutcome::failed("-EFAULT (bad address)");
            }
            let spec = ErroneousStateSpec::OverwriteIdtGate { cpu: 0, vector: 14, value: 0x41 };
            let gate_va = world.hv().sidt(0).offset(14 * 16);
            let args = hvsim::ExchangeArgs::write_what_where(gate_va, 0x41, 0);
            let _ = world.hv_mut().hc_memory_exchange(attacker, &args);
            let audit = spec.audit(world);
            let mut out = ScenarioOutcome {
                erroneous_state: audit.present,
                state_audit: Some(audit),
                notes: vec![],
                error: None,
            };
            let mut buf = [0u8; 1];
            let _ = world
                .hv_mut()
                .guest_read_va(attacker, hvsim_mem::VirtAddr::new(0x7f00_0000_0000), &mut buf);
            out.note("triggered page fault");
            out
        }

        fn run_injection(
            &self,
            world: &mut World,
            attacker: DomainId,
            injector: &dyn Injector,
        ) -> ScenarioOutcome {
            let spec = ErroneousStateSpec::OverwriteIdtGate { cpu: 0, vector: 14, value: 0x41 };
            match injector.inject(world, attacker, &spec) {
                Ok(ev) => {
                    let mut buf = [0u8; 1];
                    let _ = world.hv_mut().guest_read_va(
                        attacker,
                        hvsim_mem::VirtAddr::new(0x7f00_0000_0000),
                        &mut buf,
                    );
                    ScenarioOutcome {
                        erroneous_state: true,
                        state_audit: Some(ev.audit),
                        notes: vec!["injected and triggered".into()],
                        error: None,
                    }
                }
                Err(e) => ScenarioOutcome::failed(e.to_string()),
            }
        }
    }

    #[test]
    fn campaign_produces_full_matrix() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        assert_eq!(report.cells().len(), 6, "3 versions x 2 modes");
        // Exploit works only on 4.6.
        let e46 = report.cell("synthetic-crash", XenVersion::V4_6, Mode::Exploit).unwrap();
        assert!(e46.erroneous_state);
        assert!(e46.violated());
        let e48 = report.cell("synthetic-crash", XenVersion::V4_8, Mode::Exploit).unwrap();
        assert!(!e48.erroneous_state);
        assert_eq!(
            e48.error,
            Some(CampaignError::Injection { message: "-EFAULT (bad address)".into() })
        );
        assert_eq!(e48.outcome, CellOutcome::Completed);
        assert!(!e48.degraded(), "a failed exploit attempt is data, not degradation");
        // Injection works everywhere and the crash follows everywhere.
        for v in XenVersion::ALL {
            let c = report.cell("synthetic-crash", v, Mode::Injection).unwrap();
            assert!(c.erroneous_state, "injection on {v}");
            assert!(c.violated(), "crash on {v}");
            assert!(!c.handled);
        }
    }

    #[test]
    fn report_renderers_produce_tables() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        let t2 = report.render_table2();
        assert!(t2.contains("synthetic-crash"));
        assert!(t2.contains("Write Unauthorized Arbitrary Memory"));
        let t3 = report.render_table3();
        assert!(t3.contains("4.13 Sec. Viol."));
        assert!(t3.contains(CHECK));
        let f4 = report.render_fig4();
        assert!(f4.contains("yes"), "exploit and injection equivalent on 4.6:\n{f4}");
        let f2 = report.render_fig2("synthetic-crash", XenVersion::V4_6);
        assert!(f2.contains("traditional"));
        assert!(f2.contains("injection"));
        let json = report.to_json().unwrap();
        assert!(json.contains("\"use_case\""));
    }

    #[test]
    fn worker_count_and_snapshot_reuse_do_not_change_the_report() {
        let campaign = Campaign::new().with_use_case(Box::new(CrashCase));
        let serial = campaign.run_with_jobs(1).normalized().to_json().unwrap();
        let parallel = campaign.run_with_jobs(8).normalized().to_json().unwrap();
        assert_eq!(serial, parallel, "jobs=1 and jobs=8 reports must be byte-identical");
        let booted = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .reuse_snapshots(false)
            .run_with_jobs(2)
            .normalized()
            .to_json()
            .unwrap();
        assert_eq!(serial, booted, "snapshot clones must equal fresh boots");
    }

    #[test]
    fn cells_record_timing_and_hypercalls() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        // Every injection cell goes through the injector's hypercalls.
        for c in report.cells().iter().filter(|c| c.mode == Mode::Injection) {
            assert!(c.hypercalls > 0, "injection on {} made no hypercalls", c.version);
        }
        assert!(report.total_hypercalls() > 0);
        assert!(report.total_wall_time_us() > 0);
        // Normalization zeroes the only non-deterministic field.
        assert!(report.normalized().cells().iter().all(|c| c.wall_time_us == 0));
        let t = CampaignThroughput::new(&report, 2, 1_000_000);
        assert_eq!(t.cells, report.cells().len());
        assert_eq!(t.completed_cells, report.cells().len(), "clean run: all cells complete");
        assert_eq!(t.degraded_cells, 0);
        assert!((t.cells_per_sec - t.completed_cells as f64).abs() < 1e-9);
    }

    #[test]
    fn restricted_campaign() {
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .versions(&[XenVersion::V4_13])
            .modes(&[Mode::Injection])
            .run();
        assert_eq!(report.cells().len(), 1);
        assert_eq!(report.cells()[0].version, XenVersion::V4_13);
    }

    /// A factory that panics for one specific `(version, injector)`
    /// combination and boots the standard world everywhere else.
    fn panicking_factory(bad: (XenVersion, bool)) -> WorldFactory {
        Arc::new(move |version, injector| {
            assert!(
                (version, injector) != bad,
                "factory panic for ({version}, injector={injector})"
            );
            standard_world(version, injector)
        })
    }

    #[test]
    fn panicking_factory_cell_is_contained() {
        for reuse in [true, false] {
            let report = Campaign::new()
                .with_use_case(Box::new(CrashCase))
                .world_factory(panicking_factory((XenVersion::V4_8, true)))
                .reuse_snapshots(reuse)
                .run();
            assert_eq!(report.cells().len(), 6, "the campaign still completes (reuse={reuse})");
            let bad = report.cell("synthetic-crash", XenVersion::V4_8, Mode::Injection).unwrap();
            assert!(bad.degraded());
            assert!(
                matches!(&bad.outcome, CellOutcome::Crashed { payload, cell }
                    if payload.contains("factory panic") && cell.version == XenVersion::V4_8),
                "got {:?}",
                bad.outcome
            );
            assert!(matches!(&bad.error, Some(CampaignError::HarnessCrash { .. })));
            // Every other cell is untouched.
            for cell in report.cells() {
                if cell.version == XenVersion::V4_8 && cell.mode == Mode::Injection {
                    continue;
                }
                assert!(!cell.degraded(), "{} {} {} degraded", cell.use_case, cell.version, cell.mode);
            }
            assert!(report.is_degraded());
            assert_eq!(report.degraded_cells().count(), 1);
        }
    }

    #[test]
    fn contained_crashes_are_deterministic_across_worker_counts() {
        let campaign = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .world_factory(panicking_factory((XenVersion::V4_6, false)));
        let serial = campaign.run_with_jobs(1).normalized().to_json().unwrap();
        let parallel = campaign.run_with_jobs(8).normalized().to_json().unwrap();
        assert_eq!(serial, parallel, "degraded cells must serialize identically at any -j");
    }

    /// A use case whose injection path sleeps past any reasonable
    /// deadline; the exploit path returns immediately.
    struct SleepyCase;

    impl UseCase for SleepyCase {
        fn name(&self) -> &'static str {
            "synthetic-sleep"
        }

        fn intrusion_model(&self) -> IntrusionModel {
            IntrusionModel::guest_hypercall_memory(
                "IM-sleep",
                AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
                &["XSA-212"],
            )
        }

        fn run_exploit(&self, _world: &mut World, _attacker: DomainId) -> ScenarioOutcome {
            ScenarioOutcome::failed("not applicable")
        }

        fn run_injection(
            &self,
            _world: &mut World,
            _attacker: DomainId,
            _injector: &dyn Injector,
        ) -> ScenarioOutcome {
            std::thread::sleep(Duration::from_millis(300));
            ScenarioOutcome::failed("finished late")
        }
    }

    #[test]
    fn deadline_overrun_is_reported_timed_out() {
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .with_use_case(Box::new(SleepyCase))
            .versions(&[XenVersion::V4_13])
            .modes(&[Mode::Injection])
            .cell_deadline(Duration::from_millis(40))
            .run();
        assert_eq!(report.cells().len(), 2, "the campaign completes past the stuck cell");
        let slow = report.cell("synthetic-sleep", XenVersion::V4_13, Mode::Injection).unwrap();
        assert!(matches!(slow.outcome, CellOutcome::TimedOut { deadline_us: 40_000 }));
        assert_eq!(slow.error, Some(CampaignError::Deadline { deadline_us: 40_000 }));
        assert!(slow.degraded());
        let fast = report.cell("synthetic-crash", XenVersion::V4_13, Mode::Injection).unwrap();
        assert!(!fast.degraded(), "cells inside the deadline are unaffected");
        assert!(report.is_degraded());
    }

    #[test]
    fn transient_boot_failures_retry_then_succeed() {
        use std::collections::BTreeMap as Map;
        // Each (version, injector) key fails transiently twice before
        // booting, so retry accounting is schedule-independent.
        let counters: Mutex<Map<(XenVersion, bool), u32>> = Mutex::new(Map::new());
        let factory: WorldFactory = Arc::new(move |version, injector| {
            let mut counters = counters.lock().unwrap();
            let failures = counters.entry((version, injector)).or_insert(0);
            if *failures < 2 {
                *failures += 1;
                return Err(guestos::BootError::transient("create dom0", "no frames left"));
            }
            drop(counters);
            standard_world(version, injector)
        });

        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .world_factory(factory.clone())
            .reuse_snapshots(false)
            .versions(&[XenVersion::V4_13])
            .modes(&[Mode::Injection])
            .retries(2)
            .run();
        let cell = report.cell("synthetic-crash", XenVersion::V4_13, Mode::Injection).unwrap();
        assert_eq!(cell.attempts, 3, "two transient failures + one success");
        assert_eq!(cell.outcome, CellOutcome::Completed);
        assert!(!cell.degraded());
        assert!(cell.erroneous_state, "the recovered cell carries real assessment data");

        // Without a retry budget the same failure degrades the cell.
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .world_factory(Arc::new(|_, _| {
                Err(guestos::BootError::transient("create dom0", "no frames left"))
            }))
            .reuse_snapshots(false)
            .versions(&[XenVersion::V4_13])
            .modes(&[Mode::Injection])
            .run();
        let cell = report.cells().first().unwrap();
        assert_eq!(cell.outcome, CellOutcome::BootFailed);
        assert!(matches!(
            &cell.error,
            Some(CampaignError::Boot { attempts: 1, message }) if message.contains("no frames left")
        ));
        assert!(cell.degraded());
    }

    /// A detector that always panics, for monitor containment tests.
    struct ExplodingDetector;

    impl crate::monitor::Detector for ExplodingDetector {
        fn name(&self) -> &'static str {
            "exploding"
        }

        fn observe(&self, _world: &World) -> Vec<SecurityViolation> {
            panic!("detector exploded")
        }
    }

    /// CrashCase with a monitor whose first detector panics.
    struct BadMonitorCase;

    impl UseCase for BadMonitorCase {
        fn name(&self) -> &'static str {
            "synthetic-bad-monitor"
        }

        fn intrusion_model(&self) -> IntrusionModel {
            CrashCase.intrusion_model()
        }

        fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
            CrashCase.run_exploit(world, attacker)
        }

        fn run_injection(
            &self,
            world: &mut World,
            attacker: DomainId,
            injector: &dyn Injector,
        ) -> ScenarioOutcome {
            CrashCase.run_injection(world, attacker, injector)
        }

        fn monitor(&self, _world: &World, _attacker: DomainId) -> crate::monitor::Monitor {
            crate::monitor::Monitor::standard().with(Box::new(ExplodingDetector))
        }
    }

    #[test]
    fn panicking_detector_degrades_but_keeps_other_observations() {
        let report = Campaign::new()
            .with_use_case(Box::new(BadMonitorCase))
            .versions(&[XenVersion::V4_6])
            .modes(&[Mode::Injection])
            .run();
        let cell = report.cells().first().unwrap();
        assert!(
            matches!(&cell.error, Some(CampaignError::Monitor { message })
                if message.contains("exploding") && message.contains("detector exploded")),
            "got {:?}",
            cell.error
        );
        assert!(cell.degraded(), "a partial observation is harness degradation");
        assert!(cell.violated(), "the surviving detectors still observed the crash");
    }
}
