//! The assessment campaign runner: every use case × version × mode, with
//! monitoring — the machinery behind the paper's Tables II/III and
//! Figs. 2/4.

use crate::chaos::{splitmix64, ChaosConfig, ChaosPolicy, ChaosSink, ChaosUseCase};
use crate::checkpoint::{fnv64, slot_digest, CheckpointSession, JournalSink};
use crate::error::{panic_payload, CampaignError, CellId, CellOutcome, CheckpointError};
use crate::injector::ArbitraryAccessInjector;
use crate::monitor::SecurityViolation;
use crate::obs_bridge;
use crate::report::{TextTable, CHECK, SHIELD};
use crate::scenario::{Mode, UseCase};
use crate::stream::{
    BoundedQueue, CellSpec, GridFingerprint, PartialFold, ResidentGauge, Shard, SpecGrid,
    StreamOutcome, StreamRunStats,
};
use crate::telemetry::{self, Telemetry};
use guestos::{BootError, World, WorldBuilder};
use hvsim::{SnapshotStats, TlbStats, XenVersion};
use hvsim_obs::{
    FlightEvent, FlightHandle, HistogramSummary, MetricsRegistry, MetricsSnapshot,
    MetricsTimeline, TraceCtx, Tracer, DEFAULT_FLIGHT_CAPACITY,
};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Builds a fresh world for one campaign cell: `(version,
/// injector_enabled)` — the paper keeps everything else identical across
/// runs ("the build and experimental environment are kept the same",
/// §V-B). Shared across worker threads, hence `Arc + Send + Sync`.
/// Boot failures are data: the campaign records them per cell instead of
/// aborting, and retries transient ones under its retry budget.
pub type WorldFactory = Arc<dyn Fn(XenVersion, bool) -> Result<World, BootError> + Send + Sync>;

/// The default worker count: one per available hardware thread.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// The world used throughout the evaluation: privileged dom0 (`xen3`)
/// plus guests `xen2` and `guest03`; `guest03` is the compromised guest
/// the exploits run in.
///
/// # Errors
///
/// Propagates [`BootError`] from world construction.
pub fn standard_world(version: XenVersion, injector: bool) -> Result<World, BootError> {
    WorldBuilder::new(version)
        .injector(injector)
        .guest("xen2", 64)
        .guest("guest03", 64)
        .build()
}

/// A [`WorldFactory`] building [`standard_world`]s with an explicit
/// copy-on-write chunk size (`None` keeps the default). Chunking is a
/// pure performance knob, so campaigns run through this factory must
/// produce byte-identical normalized reports at any chunk size — CI
/// drives the 1-frame worst case through it.
pub fn standard_world_factory(chunk_frames: Option<usize>) -> WorldFactory {
    Arc::new(move |version, injector| {
        let mut builder = WorldBuilder::new(version)
            .injector(injector)
            .guest("xen2", 64)
            .guest("guest03", 64);
        if let Some(chunk) = chunk_frames {
            builder = builder.chunk_frames(chunk);
        }
        builder.build()
    })
}

/// Locks a mutex, recovering the data from a poisoned lock. Cell bodies
/// run under their own panic boundary, so a poisoned slot can only mean
/// a panic in the tiny bookkeeping window around it — the data is a
/// plain enum that is always in a consistent state, so recovery is safe
/// and one crashed worker can never wedge result collection.
pub(crate) fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Name of the attacker guest in the standard world.
pub const ATTACKER_GUEST: &str = "guest03";

/// Wall-clock time spent in each cell phase, in microseconds. `None`
/// means the phase was never reached; a phase that crashed or timed out
/// records the time it consumed before dying, so a degraded cell is
/// attributable to boot vs inject vs monitor. Which phases are `Some`
/// is deterministic for a fixed workload; the durations themselves are
/// wall-clock and are zeroed by [`CampaignReport::normalized`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseTimings {
    /// World acquisition (snapshot clone or factory boot).
    pub boot_us: Option<u64>,
    /// The scenario body (exploit or injection path).
    pub inject_us: Option<u64>,
    /// Monitoring for security violations.
    pub monitor_us: Option<u64>,
}

impl PhaseTimings {
    /// The timings with every recorded duration zeroed, preserving
    /// which phases ran.
    #[must_use]
    pub fn normalized(self) -> Self {
        Self {
            boot_us: self.boot_us.map(|_| 0),
            inject_us: self.inject_us.map(|_| 0),
            monitor_us: self.monitor_us.map(|_| 0),
        }
    }
}

/// One campaign cell: a use case run in one mode on one version.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct CellResult {
    /// Use-case name (e.g. `XSA-212-crash`).
    pub use_case: String,
    /// The abusive functionality of its intrusion model (for Table II).
    pub abusive_functionality: String,
    /// Version under test.
    pub version: XenVersion,
    /// Exploit or injection.
    pub mode: Mode,
    /// Whether the erroneous state was induced.
    pub erroneous_state: bool,
    /// Violations observed afterwards.
    pub violations: Vec<SecurityViolation>,
    /// State induced but no violation — the system *handled* it (the
    /// shield of Table III).
    pub handled: bool,
    /// The run's log.
    pub notes: Vec<String>,
    /// What went wrong, as the typed campaign taxonomy: a failed
    /// injection attempt (assessment data), or a harness failure (boot,
    /// monitor, crash, deadline).
    pub error: Option<CampaignError>,
    /// How far the cell got: completed, boot-failed, crashed, or
    /// timed out.
    pub outcome: CellOutcome,
    /// World-boot attempts consumed by this cell (1 unless transient
    /// boot failures were retried).
    pub attempts: u32,
    /// Wall-clock time spent on this cell (world acquisition + run +
    /// monitoring), in microseconds. Non-deterministic;
    /// [`CampaignReport::normalized`] zeroes it for run-to-run
    /// comparisons.
    pub wall_time_us: u64,
    /// Hypercalls executed while running this cell (deterministic for a
    /// given configuration). Kept for report compatibility; campaign
    /// totals are also published as the `campaign.hypercalls` registry
    /// counter when metrics are enabled (see [`Campaign::metrics`]).
    pub hypercalls: u64,
    /// Per-phase wall-clock breakdown — recorded for degraded cells
    /// too, so a timeout or crash is attributable to a phase.
    pub phase_us: PhaseTimings,
    /// Copy-on-write accounting of the cell's world at collection time.
    /// `frames_shared` depends on which sibling snapshots happen to be
    /// alive when the cell finishes (and `frames_copied` on whether the
    /// world was cloned or freshly booted), so the whole record is
    /// zeroed by [`CampaignReport::normalized`].
    pub snapshot: SnapshotStats,
    /// Software-TLB hit/miss counters for the cell's world. Differs by
    /// construction when the TLB is disabled, so it is zeroed by
    /// [`CampaignReport::normalized`] too.
    pub tlb: TlbStats,
    /// The cell's forensic tail: flight-recorder events its worker
    /// retained for this slot, attached only when the cell degraded
    /// (empty otherwise, and whenever the recorder is off). Cleared by
    /// [`CampaignReport::normalized`] so normalized reports are
    /// byte-identical with the recorder on or off.
    pub flight: Vec<FlightEvent>,
}

impl CellResult {
    /// `true` if at least one security violation was observed.
    pub fn violated(&self) -> bool {
        !self.violations.is_empty()
    }

    /// `true` when the harness (not the system under test) degraded on
    /// this cell: it crashed, timed out, never booted, or lost part of
    /// its observation. Failed injection attempts are *not* degradation
    /// — they are the paper's fixed-version data points.
    pub fn degraded(&self) -> bool {
        self.outcome.is_degraded()
            || self.error.as_ref().is_some_and(CampaignError::is_harness_failure)
    }
}

/// A complete campaign report.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct CampaignReport {
    cells: Vec<CellResult>,
    metrics: Option<MetricsSnapshot>,
}

impl CampaignReport {
    /// Builds a report from pre-computed cells (used by the benchmark
    /// layer and by report deserialization).
    pub fn from_cells(cells: Vec<CellResult>) -> Self {
        Self { cells, metrics: None }
    }

    /// All cells.
    pub fn cells(&self) -> &[CellResult] {
        &self.cells
    }

    /// The metrics snapshot taken at collection time, when the campaign
    /// ran with a registry attached (see [`Campaign::metrics`]).
    pub fn metrics(&self) -> Option<&MetricsSnapshot> {
        self.metrics.as_ref()
    }

    /// Looks up one cell.
    pub fn cell(&self, use_case: &str, version: XenVersion, mode: Mode) -> Option<&CellResult> {
        self.cells
            .iter()
            .find(|c| c.use_case == use_case && c.version == version && c.mode == mode)
    }

    /// Iterates the first cell of each use case, in campaign order — the
    /// per-use-case anchor rows shared by the Table II/III and Fig. 4
    /// renderers.
    pub fn first_cell_per_use_case(&self) -> impl Iterator<Item = &CellResult> {
        let mut seen = BTreeSet::new();
        self.cells.iter().filter(move |c| seen.insert(c.use_case.clone()))
    }

    /// A copy with every wall-clock timing zeroed — per-cell totals,
    /// per-phase breakdowns, and metric histogram quantiles. Timing is
    /// the only non-deterministic part of a report; the normalized form
    /// is byte-identical across runs and worker counts for the same
    /// configuration.
    #[must_use]
    pub fn normalized(&self) -> Self {
        let mut report = self.clone();
        for cell in &mut report.cells {
            cell.wall_time_us = 0;
            cell.phase_us = cell.phase_us.normalized();
            // COW sharing depends on concurrently-alive sibling
            // snapshots (worker count, reuse) and TLB counters on the
            // cache toggle; neither is part of the assessment result.
            cell.snapshot = SnapshotStats::default();
            cell.tlb = TlbStats::default();
            // Forensic tails are wall-clock-stamped diagnostics whose
            // presence depends on the recorder setting; normalization
            // drops them so recorder-on and recorder-off reports match.
            cell.flight = Vec::new();
        }
        report.metrics = report.metrics.as_ref().map(MetricsSnapshot::normalized);
        report
    }

    /// Total wall-clock time across all cells, in microseconds.
    pub fn total_wall_time_us(&self) -> u64 {
        self.cells.iter().map(|c| c.wall_time_us).sum()
    }

    /// Total hypercalls executed across all cells.
    pub fn total_hypercalls(&self) -> u64 {
        self.cells.iter().map(|c| c.hypercalls).sum()
    }

    /// Cells that completed cleanly (including failed injection
    /// attempts, which are assessment data).
    pub fn completed_cells(&self) -> impl Iterator<Item = &CellResult> {
        self.cells.iter().filter(|c| !c.degraded())
    }

    /// Cells on which the harness degraded: crashed, timed out, failed
    /// to boot, or lost part of their observation.
    pub fn degraded_cells(&self) -> impl Iterator<Item = &CellResult> {
        self.cells.iter().filter(|c| c.degraded())
    }

    /// `true` when any cell degraded — the CLI maps this to exit code 2.
    pub fn is_degraded(&self) -> bool {
        self.cells.iter().any(CellResult::degraded)
    }

    /// `true` when any cell observed a security violation — the CLI
    /// maps this to exit code 1 (when nothing degraded).
    pub fn has_violations(&self) -> bool {
        self.cells.iter().any(CellResult::violated)
    }

    /// Renders Table II: use case → abusive functionality.
    pub fn render_table2(&self) -> String {
        let mut table = TextTable::new(["Use Case", "Abusive Functionality"])
            .title("TABLE II: use cases and their abusive functionality");
        for c in self.first_cell_per_use_case() {
            table.row([c.use_case.clone(), c.abusive_functionality.clone()]);
        }
        table.to_string()
    }

    /// Renders Table III: the injection campaign on the non-vulnerable
    /// versions. A check marks a correctly induced property; the shield
    /// marks an erroneous state the system handled.
    pub fn render_table3(&self) -> String {
        let mut table = TextTable::new([
            "Use Case",
            "4.8 Err. State",
            "4.8 Sec. Viol.",
            "4.13 Err. State",
            "4.13 Sec. Viol.",
        ])
        .title(
            "TABLE III: injection campaign in non-vulnerable versions \
             (check = property induced, shield = erroneous state handled)",
        );
        for c in self.first_cell_per_use_case() {
            let mut row = vec![c.use_case.clone()];
            for version in [XenVersion::V4_8, XenVersion::V4_13] {
                match self.cell(&c.use_case, version, Mode::Injection) {
                    Some(cell) => {
                        row.push(if cell.erroneous_state { CHECK } else { "x" }.to_owned());
                        row.push(
                            if cell.violated() {
                                CHECK.to_owned()
                            } else if cell.handled {
                                SHIELD.to_owned()
                            } else {
                                "x".to_owned()
                            },
                        );
                    }
                    None => {
                        row.push("-".into());
                        row.push("-".into());
                    }
                }
            }
            table.row(row);
        }
        table.to_string()
    }

    /// Renders the Fig. 4 comparison: on the vulnerable version, does the
    /// injection reproduce the exploit's erroneous state *and* security
    /// violation?
    pub fn render_fig4(&self) -> String {
        let mut table = TextTable::new([
            "Use Case",
            "exploit err/viol (4.6)",
            "injection err/viol (4.6)",
            "equivalent",
        ])
        .title("FIG. 4: experimental validation on the vulnerable version (Xen 4.6)");
        for c in self.first_cell_per_use_case() {
            let e = self.cell(&c.use_case, XenVersion::V4_6, Mode::Exploit);
            let i = self.cell(&c.use_case, XenVersion::V4_6, Mode::Injection);
            let fmt_cell = |c: Option<&CellResult>| match c {
                Some(c) => format!(
                    "{}/{}",
                    if c.erroneous_state { CHECK } else { "x" },
                    if c.violated() { CHECK } else { "x" }
                ),
                None => "-".into(),
            };
            let equivalent = match (e, i) {
                (Some(e), Some(i)) => {
                    e.erroneous_state == i.erroneous_state && e.violated() == i.violated()
                }
                _ => false,
            };
            table.row([
                c.use_case.clone(),
                fmt_cell(e),
                fmt_cell(i),
                if equivalent { "yes" } else { "NO" }.to_owned(),
            ]);
        }
        table.to_string()
    }

    /// Renders the Fig. 2 methodology view for one use case on one
    /// version: the traditional path vs the injection path.
    pub fn render_fig2(&self, use_case: &str, version: XenVersion) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "FIG. 2: methodology paths for {use_case} on Xen {version}\n"
        ));
        for (mode, label) in [
            (Mode::Exploit, "traditional: attack -> vulnerability -> intrusion"),
            (Mode::Injection, "injection:   intrusion injector (intrusion model)"),
        ] {
            if let Some(c) = self.cell(use_case, version, mode) {
                let terminal = if c.violated() {
                    "security violation"
                } else if c.handled {
                    "erroneous state handled"
                } else {
                    "no erroneous state"
                };
                out.push_str(&format!(
                    "  {label} -> erroneous state: {} -> {terminal}\n",
                    if c.erroneous_state { "induced" } else { "not induced" },
                ));
            }
        }
        out
    }

    /// Serializes the report to pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates serializer errors (unreachable for this data model).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(&self.cells)
    }
}

/// Completed/degraded histogram summaries for one cell phase.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PhaseLatency {
    /// Summary over cells that completed cleanly.
    pub completed: HistogramSummary,
    /// Summary over cells on which the harness degraded.
    pub degraded: HistogramSummary,
}

/// Per-phase latency summaries (p50/p95/max), split completed vs
/// degraded — the histogram block `BENCH_campaign.json` carries
/// alongside the existing throughput fields.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// World acquisition.
    pub boot: PhaseLatency,
    /// Scenario body.
    pub inject: PhaseLatency,
    /// Violation monitoring.
    pub monitor: PhaseLatency,
}

impl LatencyBreakdown {
    /// Summarizes a report's per-phase timings.
    pub fn from_report(report: &CampaignReport) -> Self {
        let phase = |value: fn(&CellResult) -> Option<u64>| PhaseLatency {
            completed: obs_bridge::phase_summary(report.completed_cells(), value),
            degraded: obs_bridge::phase_summary(report.degraded_cells(), value),
        };
        Self {
            boot: phase(|c| c.phase_us.boot_us),
            inject: phase(|c| c.phase_us.inject_us),
            monitor: phase(|c| c.phase_us.monitor_us),
        }
    }
}

/// A machine-readable campaign throughput record — what the Table III
/// regenerator writes to `BENCH_campaign.json`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CampaignThroughput {
    /// Cells the campaign scheduled.
    pub cells: usize,
    /// Cells that completed cleanly (throughput counts only these).
    pub completed_cells: usize,
    /// Cells on which the harness degraded (crashed / timed out /
    /// boot-failed / partial observation).
    pub degraded_cells: usize,
    /// Worker threads used.
    pub workers: usize,
    /// End-to-end elapsed wall-clock time, in microseconds.
    pub elapsed_us: u64,
    /// *Completed* cells per second of elapsed time — degraded cells do
    /// not inflate throughput, so BENCH trajectories stay comparable
    /// across clean and degraded runs.
    pub cells_per_sec: f64,
    /// Sum of per-cell wall-clock times (≈ CPU time across workers).
    pub total_cell_wall_time_us: u64,
    /// Hypercalls executed across all cells.
    pub total_hypercalls: u64,
    /// Per-phase latency summaries, split completed vs degraded.
    pub latency: LatencyBreakdown,
    /// Copy-on-write aggregate: `frames_total`/`frames_shared` are the
    /// per-cell maxima (worlds share one size; peak sharing shows how
    /// much of a snapshot stayed shared), `frames_copied` is summed
    /// across cells.
    pub snapshot: SnapshotStats,
    /// Software-TLB hit/miss totals summed across cells.
    pub tlb: TlbStats,
}

impl CampaignThroughput {
    /// Derives the record from a report, the worker count, and the
    /// elapsed run time.
    pub fn new(report: &CampaignReport, workers: usize, elapsed_us: u64) -> Self {
        let elapsed_us = elapsed_us.max(1);
        let cells = report.cells().len();
        let degraded_cells = report.degraded_cells().count();
        let completed_cells = cells - degraded_cells;
        Self {
            cells,
            completed_cells,
            degraded_cells,
            workers,
            elapsed_us,
            cells_per_sec: completed_cells as f64 * 1_000_000.0 / elapsed_us as f64,
            total_cell_wall_time_us: report.total_wall_time_us(),
            total_hypercalls: report.total_hypercalls(),
            latency: LatencyBreakdown::from_report(report),
            snapshot: SnapshotStats {
                frames_total: report.cells().iter().map(|c| c.snapshot.frames_total).max().unwrap_or(0),
                frames_shared: report.cells().iter().map(|c| c.snapshot.frames_shared).max().unwrap_or(0),
                frames_copied: report.cells().iter().map(|c| c.snapshot.frames_copied).sum(),
                chunks_privatized: report.cells().iter().map(|c| c.snapshot.chunks_privatized).sum(),
            },
            tlb: TlbStats {
                hits: report.cells().iter().map(|c| c.tlb.hits).sum(),
                misses: report.cells().iter().map(|c| c.tlb.misses).sum(),
                fill_conflicts: report.cells().iter().map(|c| c.tlb.fill_conflicts).sum(),
            },
        }
    }
}

/// Fault-containment and scheduling knobs shared by campaign runs.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Worker threads; `None` means one per hardware thread.
    pub jobs: Option<usize>,
    /// Boot each `(version, injector)` base world once and clone it per
    /// cell (on by default via [`Campaign::new`]).
    pub reuse_snapshots: bool,
    /// Per-cell deadline enforced by a watchdog thread; overrunning
    /// cells are reported [`CellOutcome::TimedOut`]. `None` disables the
    /// watchdog. The watchdog is cooperative: it re-labels the slot and
    /// lets the campaign finish, but a cell body that never returns
    /// still holds its worker thread until it does.
    pub cell_deadline: Option<Duration>,
    /// Extra boot attempts for *transient* failures (`-ENOMEM`/`-EBUSY`)
    /// per cell; `0` means fail on the first error.
    pub retries: u32,
    /// Disables the software TLB in every cell's world (the `--no-tlb`
    /// escape hatch; default `false` = TLB on). The cache is
    /// semantically transparent, so reports are identical either way.
    pub disable_tlb: bool,
    /// Trials per `(use_case, version, mode)` key — the parameter-grid
    /// axis of the campaign grid. Each trial is its own cell; use cases
    /// see the trial index via
    /// [`UseCase::run_injection_trial`](crate::UseCase::run_injection_trial).
    /// Defaults to 1 (the classic single-shot grid).
    pub trials: u64,
    /// Bounded work-queue capacity for [`Campaign::run_streaming`];
    /// `None` picks `max(2 × workers, 8)`.
    pub queue_depth: Option<usize>,
    /// Run only this shard of the grid (slots congruent to `index`
    /// modulo `count`); `None` runs everything. Merging the `n` shard
    /// reports reproduces the unsharded report byte-for-byte after
    /// normalization.
    pub shard: Option<Shard>,
    /// Slots between durable fold records per worker when a streaming
    /// run is checkpointed (see
    /// [`Campaign::run_streaming_checkpointed`]). Smaller intervals
    /// lose less work on a crash but sync more often.
    pub checkpoint_interval: u64,
    /// Also stream per-cell forensic slot records to the `<journal>.slots`
    /// sidecar during a checkpointed run (which cells ran, in what
    /// order, with what digest). Off by default: recovery never reads
    /// slot records, and at ~150 bytes per cell they cost measurable
    /// throughput on slow or contended storage.
    pub journal_slots: bool,
    /// Seeded harness-fault injection (see [`crate::chaos`]); `None`
    /// (the default) runs no chaos.
    pub chaos: Option<ChaosConfig>,
    /// Per-worker flight-recorder ring capacity, in events. The
    /// recorder is always on at negligible cost (one mutexed ring push
    /// per event, no allocation beyond the event itself); `0` disables
    /// it, which is the escape hatch the overhead gate measures
    /// against. Defaults to [`DEFAULT_FLIGHT_CAPACITY`].
    pub flight_capacity: usize,
    /// Directory stall-triggered flight dumps are written into by the
    /// supervisor (`stall-worker-<n>.jsonl`); `None` disables stall
    /// dumps (stalls are still counted).
    pub flight_out: Option<PathBuf>,
    /// Metrics-timeline sampling interval. `Some` starts the
    /// supervisor thread which pushes one [`TimelineSample`]
    /// (`hvsim_obs::TimelineSample`) per tick into the attached
    /// timeline; `None` leaves sampling off unless `progress` or
    /// `flight_out` needs the supervisor anyway (then a 200ms default
    /// is used).
    pub metrics_interval: Option<Duration>,
    /// Redraw a live progress line (done/total, cells/s, ETA, degraded
    /// count) on stderr every sampling tick.
    pub progress: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            jobs: None,
            reuse_snapshots: false,
            cell_deadline: None,
            retries: 0,
            disable_tlb: false,
            trials: 1,
            queue_depth: None,
            shard: None,
            checkpoint_interval: 1024,
            journal_slots: false,
            chaos: None,
            flight_capacity: DEFAULT_FLIGHT_CAPACITY,
            flight_out: None,
            metrics_interval: None,
            progress: false,
        }
    }
}

/// The campaign: use cases × versions × modes.
pub struct Campaign {
    use_cases: Vec<Box<dyn UseCase>>,
    versions: Vec<XenVersion>,
    modes: Vec<Mode>,
    factory: WorldFactory,
    config: CampaignConfig,
    tracer: Tracer,
    metrics: Option<MetricsRegistry>,
    timeline: Option<MetricsTimeline>,
}

impl Campaign {
    /// A campaign over all three versions and both modes, using the
    /// standard world, snapshot reuse, and one worker per hardware
    /// thread. Tracing and metrics are off until attached.
    pub fn new() -> Self {
        Self {
            use_cases: Vec::new(),
            versions: XenVersion::ALL.to_vec(),
            modes: vec![Mode::Exploit, Mode::Injection],
            factory: Arc::new(standard_world),
            config: CampaignConfig { reuse_snapshots: true, ..CampaignConfig::default() },
            tracer: Tracer::disabled(),
            metrics: None,
            timeline: None,
        }
    }

    /// Adds a use case.
    #[must_use]
    pub fn with_use_case(mut self, uc: Box<dyn UseCase>) -> Self {
        self.use_cases.push(uc);
        self
    }

    /// Restricts the versions under test.
    #[must_use]
    pub fn versions(mut self, versions: &[XenVersion]) -> Self {
        self.versions = versions.to_vec();
        self
    }

    /// Restricts the modes.
    #[must_use]
    pub fn modes(mut self, modes: &[Mode]) -> Self {
        self.modes = modes.to_vec();
        self
    }

    /// Replaces the world factory.
    #[must_use]
    pub fn world_factory(mut self, factory: WorldFactory) -> Self {
        self.factory = factory;
        self
    }

    /// Sets the worker count used by [`Campaign::run`]. `0` or unset
    /// means one worker per hardware thread.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.config.jobs = (jobs > 0).then_some(jobs);
        self
    }

    /// Enables or disables world-snapshot reuse. When enabled (the
    /// default), each `(version, injector_enabled)` base world boots
    /// once and every cell starts from a clone of it; when disabled,
    /// every cell boots its own world through the factory, like the
    /// paper's original setup. Booting is deterministic, so both paths
    /// produce identical reports.
    #[must_use]
    pub fn reuse_snapshots(mut self, reuse: bool) -> Self {
        self.config.reuse_snapshots = reuse;
        self
    }

    /// Sets the per-cell deadline (see [`CampaignConfig::cell_deadline`]).
    #[must_use]
    pub fn cell_deadline(mut self, deadline: Duration) -> Self {
        self.config.cell_deadline = Some(deadline);
        self
    }

    /// Allows up to `retries` extra boot attempts per cell for transient
    /// failures (see [`CampaignConfig::retries`]).
    #[must_use]
    pub fn retries(mut self, retries: u32) -> Self {
        self.config.retries = retries;
        self
    }

    /// Enables or disables the per-world software TLB (on by default;
    /// see [`CampaignConfig::disable_tlb`]).
    #[must_use]
    pub fn use_tlb(mut self, enabled: bool) -> Self {
        self.config.disable_tlb = !enabled;
        self
    }

    /// Sets the trials axis of the grid (see [`CampaignConfig::trials`]).
    /// `0` is treated as 1.
    #[must_use]
    pub fn trials(mut self, trials: u64) -> Self {
        self.config.trials = trials.max(1);
        self
    }

    /// Sets the bounded work-queue capacity used by
    /// [`Campaign::run_streaming`]; `0` or unset picks a default of
    /// `max(2 × workers, 8)`.
    #[must_use]
    pub fn queue_depth(mut self, depth: usize) -> Self {
        self.config.queue_depth = (depth > 0).then_some(depth);
        self
    }

    /// Restricts the run to one shard of the grid (see
    /// [`CampaignConfig::shard`]).
    #[must_use]
    pub fn shard(mut self, shard: Shard) -> Self {
        self.config.shard = Some(shard);
        self
    }

    /// Sets the checkpoint fold interval (see
    /// [`CampaignConfig::checkpoint_interval`]). `0` is treated as 1.
    #[must_use]
    pub fn checkpoint_interval(mut self, interval: u64) -> Self {
        self.config.checkpoint_interval = interval.max(1);
        self
    }

    /// Enables the per-cell forensic slot sidecar for checkpointed
    /// runs (see [`CampaignConfig::journal_slots`]).
    #[must_use]
    pub fn journal_slots(mut self, enabled: bool) -> Self {
        self.config.journal_slots = enabled;
        self
    }

    /// Enables seeded harness-fault injection (see
    /// [`CampaignConfig::chaos`]).
    #[must_use]
    pub fn chaos(mut self, config: ChaosConfig) -> Self {
        self.config.chaos = Some(config);
        self
    }

    /// Sets the per-worker flight-recorder ring capacity (see
    /// [`CampaignConfig::flight_capacity`]); `0` disables the recorder.
    #[must_use]
    pub fn flight_capacity(mut self, capacity: usize) -> Self {
        self.config.flight_capacity = capacity;
        self
    }

    /// Sets the directory stall-triggered flight dumps are written
    /// into (see [`CampaignConfig::flight_out`]).
    #[must_use]
    pub fn flight_out(mut self, dir: PathBuf) -> Self {
        self.config.flight_out = Some(dir);
        self
    }

    /// Enables the metrics-timeline sampler at `interval` (see
    /// [`CampaignConfig::metrics_interval`]).
    #[must_use]
    pub fn metrics_interval(mut self, interval: Duration) -> Self {
        self.config.metrics_interval = Some(interval);
        self
    }

    /// Enables the live progress line on stderr (see
    /// [`CampaignConfig::progress`]).
    #[must_use]
    pub fn progress(mut self, enabled: bool) -> Self {
        self.config.progress = enabled;
        self
    }

    /// Attaches a timeline the supervisor pushes live samples into;
    /// drain it after the run (see [`MetricsTimeline::to_jsonl`]).
    /// Implies the supervisor runs even without an explicit
    /// [`Campaign::metrics_interval`].
    #[must_use]
    pub fn timeline(mut self, timeline: MetricsTimeline) -> Self {
        self.timeline = Some(timeline);
        self
    }

    /// The campaign's cell grid: use cases × versions × modes × trials.
    pub fn grid(&self) -> SpecGrid {
        SpecGrid::new(self.use_cases.len(), &self.versions, &self.modes, self.config.trials)
    }

    /// The campaign's grid identity — stamped into streamed reports
    /// (so mismatched reports refuse to merge) and into checkpoint
    /// journals (so a journal refuses to resume the wrong campaign).
    pub fn fingerprint(&self) -> GridFingerprint {
        GridFingerprint {
            use_cases: self.use_cases.iter().map(|uc| uc.name().to_owned()).collect(),
            versions: self.versions.clone(),
            modes: self.modes.clone(),
            trials: self.config.trials.max(1),
        }
    }

    /// Replaces the whole configuration at once.
    #[must_use]
    pub fn config(mut self, config: CampaignConfig) -> Self {
        self.config = config;
        self
    }

    /// Attaches a tracer: campaign setup, every cell phase, guest boot
    /// stages and hypervisor audit events are recorded as structured
    /// trace events (drain the tracer after the run). A disabled tracer
    /// (the default) costs one branch per instrumentation point.
    #[must_use]
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a metrics registry: at collection time the campaign
    /// folds `campaign.*` counters and per-phase latency histograms
    /// into it and embeds a snapshot in the report.
    #[must_use]
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = Some(registry);
        self
    }

    /// Runs every cell with the configured worker count. Exploit cells
    /// run on a stock build, injection cells on an injector build,
    /// exactly like the paper's setup; each cell gets a pristine world
    /// (a snapshot clone, or a fresh boot when snapshot reuse is off),
    /// runs its scenario, then monitors for violations.
    ///
    /// The run is fail-soft: a panicking world, injector, or monitor, a
    /// failed boot, or a deadline overrun degrades *that cell* (recorded
    /// in its [`CellOutcome`] / [`CampaignError`]) and the rest of the
    /// campaign completes.
    pub fn run(&self) -> CampaignReport {
        self.run_with_jobs(self.config.jobs.unwrap_or_else(default_jobs))
    }

    /// Runs every cell on exactly `jobs` worker threads. Cell results
    /// are slot-indexed, so the report's cell order — and, because each
    /// cell starts from a pristine world, the cells themselves — are
    /// identical for every worker count.
    pub fn run_with_jobs(&self, jobs: usize) -> CampaignReport {
        let grid = self.grid();
        let work: Vec<CellSpec> = grid.shard_iter(self.config.shard).collect();
        if work.is_empty() {
            return CampaignReport::default();
        }

        // Shard 0 of the trace belongs to campaign setup; the cell in
        // grid slot s uses trace shard s + 1. Shard assignment is
        // positional, so the trace's logical structure is independent
        // of the worker count.
        let setup_ctx = self.tracer.ctx(0);
        let campaign_span = setup_ctx.span("campaign");
        let base_worlds =
            self.config.reuse_snapshots.then(|| self.boot_base_worlds(&setup_ctx, &grid));

        let next = AtomicUsize::new(0);
        let completed = AtomicUsize::new(0);
        let slots: Vec<Mutex<CellSlot>> =
            work.iter().map(|_| Mutex::new(CellSlot::Pending)).collect();
        let workers = jobs.max(1).min(work.len());
        let flights: Vec<FlightHandle> =
            (0..workers).map(|_| FlightHandle::new(self.config.flight_capacity)).collect();
        let telemetry = Telemetry::new(work.len() as u64, workers);
        std::thread::scope(|scope| {
            let next = &next;
            let completed = &completed;
            let slots = &slots;
            let work = &work;
            let base_worlds = &base_worlds;
            let telemetry = &telemetry;
            for (worker, flight) in flights.iter().enumerate() {
                scope.spawn(move || {
                    // Each worker keeps its own cache of base-world
                    // handles: the shared map is consulted at most once
                    // per (version, injector) key per worker, so the
                    // per-cell hot path never touches a shared lock.
                    let mut cache: BaseCache = BTreeMap::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&spec) = work.get(i) else {
                            telemetry.worker_finished(worker);
                            break;
                        };
                        telemetry.beat(worker);
                        let started = Instant::now();
                        *lock_recover(&slots[i]) = CellSlot::Running { started };
                        let ctx = self.tracer.ctx(spec.slot + 1);
                        let mut cell = self.run_cell_contained(
                            &ctx,
                            &*self.use_cases[spec.use_case],
                            spec.version,
                            spec.mode,
                            spec.trial,
                            base_worlds.as_ref().map(|worlds| (worlds, &mut cache)),
                            0,
                            flight,
                            spec.slot,
                        );
                        if cell.degraded() {
                            cell.flight = flight.tail(spec.slot);
                        }
                        let degraded = cell.degraded();
                        self.finalize_slot(&slots[i], started, cell);
                        telemetry.cell_done(degraded);
                        completed.fetch_add(1, Ordering::Release);
                    }
                });
            }
            if let Some(deadline) = self.config.cell_deadline {
                let total = work.len();
                scope.spawn(move || watchdog(slots, completed, total, deadline));
            }
            if self.supervisor_wanted() {
                let supervisor = self.supervisor(&flights);
                scope.spawn(move || supervisor.run(telemetry, &|_| {}));
            }
        });

        let cells: Vec<CellResult> = work
            .iter()
            .zip(slots)
            .map(|(&spec, slot)| {
                let uc = &*self.use_cases[spec.use_case];
                match slot.into_inner().unwrap_or_else(PoisonError::into_inner) {
                    CellSlot::Done(cell) => *cell,
                    CellSlot::TimedOut { phases } => {
                        let mut cell = self.timed_out_cell(uc, spec.version, spec.mode, phases);
                        // The worker attaches tails for cells it saw
                        // degrade; a watchdog-relabelled slot is only
                        // known degraded here, so fetch its tail from
                        // whichever worker ring still holds it.
                        cell.flight = flights
                            .iter()
                            .map(|flight| flight.tail(spec.slot))
                            .find(|tail| !tail.is_empty())
                            .unwrap_or_default();
                        cell
                    }
                    // Unreachable — cell bodies are contained, so a
                    // worker always finalizes its slot — but a lost
                    // slot degrades one cell, never the collection.
                    CellSlot::Pending | CellSlot::Running { .. } => self.degraded_cell(
                        uc,
                        spec.version,
                        spec.mode,
                        CampaignError::HarnessCrash {
                            payload: "worker abandoned the cell".to_owned(),
                        },
                        1,
                        0,
                        PhaseTimings::default(),
                    ),
                }
            })
            .collect();
        drop(campaign_span);
        let mut report = CampaignReport { cells, metrics: None };
        // Metrics fold in at collection time, after the slot-indexed
        // cells are assembled: counter updates happen in report order,
        // never in worker-scheduling order.
        if let Some(registry) = &self.metrics {
            obs_bridge::record_report_metrics(&report, registry);
            // When chaos is configured the `campaign.chaos.*` counters
            // are always published — zeros distinguish "chaos quiet"
            // from "chaos off" (the classic engine injects no faults,
            // so these are always zero here).
            if self.config.chaos.is_some() {
                obs_bridge::record_chaos_metrics(self.chaos_policy().as_deref(), registry);
            }
            report.metrics = Some(registry.snapshot());
        }
        report
    }

    /// Whether this run needs the telemetry supervisor thread.
    fn supervisor_wanted(&self) -> bool {
        self.config.metrics_interval.is_some()
            || self.config.progress
            || self.config.flight_out.is_some()
            || self.timeline.is_some()
    }

    /// The run's telemetry supervisor, borrowing the per-worker flight
    /// handles so a stall can dump the wedged worker's ring.
    fn supervisor<'a>(&'a self, flights: &'a [FlightHandle]) -> telemetry::Supervisor<'a> {
        let interval = self.config.metrics_interval.unwrap_or(Duration::from_millis(200));
        // A busy worker counts as stalled only when its heartbeat age
        // dwarfs both the sampling cadence and the worst legitimate
        // cell — chaos slowdowns sleep 2× the deadline, so 4× is
        // comfortably past anything a healthy worker does.
        let stall_after = (interval * 4)
            .max(self.config.cell_deadline.map_or(Duration::ZERO, |d| d * 4))
            .max(Duration::from_secs(2));
        telemetry::Supervisor {
            interval,
            stall_after,
            progress: self.config.progress,
            timeline: self.timeline.as_ref(),
            registry: self.metrics.as_ref(),
            flight: flights,
            flight_out: self.config.flight_out.as_deref(),
        }
    }

    /// Stores a finished cell into its slot, honoring the deadline.
    fn finalize_slot(&self, slot: &Mutex<CellSlot>, started: Instant, cell: CellResult) {
        let mut slot = lock_recover(slot);
        // The watchdog may have abandoned this cell while it ran; a
        // finished-but-late result is also re-labelled here so deadline
        // enforcement does not depend on watchdog scheduling.
        let overran = self
            .config
            .cell_deadline
            .is_some_and(|deadline| started.elapsed() > deadline);
        if !matches!(*slot, CellSlot::TimedOut { .. }) && !overran {
            *slot = CellSlot::Done(Box::new(cell));
        } else {
            // Keep the finished cell's phase breakdown so the timeout
            // is attributable to boot/inject/monitor.
            *slot = CellSlot::TimedOut { phases: Some(cell.phase_us) };
        }
    }

    /// Streams every cell of the (possibly sharded) grid through the
    /// bounded pipeline with the configured worker count. See
    /// [`Campaign::run_streaming_with_jobs`].
    pub fn run_streaming(&self) -> StreamOutcome {
        self.run_streaming_with_jobs(self.config.jobs.unwrap_or_else(default_jobs))
    }

    /// Streams the grid on exactly `jobs` workers with O(workers +
    /// queue depth) resident memory: a generator thread lazily emits
    /// [`CellSpec`]s into a bounded queue (blocking when full), workers
    /// fold each finished cell into a per-worker partial report and
    /// drop it, and the partials merge — ordered by first slot — into
    /// one [`StreamReport`].
    ///
    /// Every aggregate in the report is a commutative monoid over
    /// per-cell values that depend only on the cell's spec, so the
    /// normalized report is byte-identical for every worker count,
    /// queue depth, and sharding. Deadlines are enforced by the same
    /// post-return check the classic runner applies when a worker
    /// finishes late; there is no watchdog thread because no slot
    /// vector exists to re-label.
    pub fn run_streaming_with_jobs(&self, jobs: usize) -> StreamOutcome {
        self.stream_impl(jobs, None, self.chaos_policy())
    }

    /// Streams the grid like [`Campaign::run_streaming`], journaling
    /// durable progress to `path` so a killed run can
    /// [`Campaign::resume`] and still produce a byte-identical merged
    /// report. The journal is created fresh (any existing file is
    /// truncated) and its header is made durable before any cell runs.
    ///
    /// # Errors
    ///
    /// [`CheckpointError::Io`] when the journal cannot be created — a
    /// checkpointed campaign refuses to run without durability. Journal
    /// errors *after* startup are fail-soft: journaling stops (counted
    /// in `campaign.checkpoint.write_errors`) and the run completes.
    pub fn run_streaming_checkpointed(&self, path: &Path) -> Result<StreamOutcome, CheckpointError> {
        let policy = self.chaos_policy();
        let session = self.with_journal_wrap(&policy, |wrap| {
            CheckpointSession::create(
                path,
                self.fingerprint(),
                self.config.shard,
                self.config.checkpoint_interval,
                self.config.journal_slots,
                wrap,
            )
        })?;
        Ok(self.stream_impl(
            self.config.jobs.unwrap_or_else(default_jobs),
            Some(session),
            policy,
        ))
    }

    /// Resumes a checkpointed streaming run from its journal: reloads
    /// the valid prefix (truncating a torn tail), re-enqueues only the
    /// slots no durable fold record covers, and merges the recovered
    /// folds with the fresh ones — so the final normalized report is
    /// byte-identical to an uninterrupted run of the same campaign.
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] when the journal is unreadable, is not a
    /// journal, or was written by a different campaign grid or shard.
    pub fn resume(&self, path: &Path) -> Result<StreamOutcome, CheckpointError> {
        let policy = self.chaos_policy();
        let session = self.with_journal_wrap(&policy, |wrap| {
            CheckpointSession::resume(
                path,
                &self.fingerprint(),
                self.config.shard,
                self.config.checkpoint_interval,
                self.config.journal_slots,
                wrap,
            )
        })?;
        Ok(self.stream_impl(
            self.config.jobs.unwrap_or_else(default_jobs),
            Some(session),
            policy,
        ))
    }

    /// The run's chaos policy, when chaos is configured and non-noop.
    fn chaos_policy(&self) -> Option<Arc<ChaosPolicy>> {
        self.config
            .chaos
            .filter(|config| !config.is_noop())
            .map(|config| Arc::new(ChaosPolicy::new(config)))
    }

    /// Calls `open` with the journal sink transformer this run needs:
    /// the identity normally, the torn-write chaos wrapper when chaos
    /// configures one.
    fn with_journal_wrap<T>(
        &self,
        policy: &Option<Arc<ChaosPolicy>>,
        open: impl FnOnce(crate::checkpoint::SinkWrap<'_>) -> T,
    ) -> T {
        match policy {
            Some(p) if p.config().torn_write_permille > 0 => {
                let p = Arc::clone(p);
                open(&move |sink: Box<dyn JournalSink>| {
                    Box::new(ChaosSink::new(sink, Arc::clone(&p))) as Box<dyn JournalSink>
                })
            }
            _ => open(&|sink| sink),
        }
    }

    /// The streaming engine body shared by plain, checkpointed, and
    /// resumed runs. With a session, the generator skips slots already
    /// covered by durable fold records, each worker journals its
    /// progress (a synced fold record every `checkpoint_interval` slots
    /// and at drain, plus per-cell slot records when the forensic
    /// sidecar is enabled), and recovered folds
    /// merge in exactly like fresh ones. With a chaos policy, slot-
    /// keyed faults are injected along the way (see [`crate::chaos`]).
    fn stream_impl(
        &self,
        jobs: usize,
        session: Option<CheckpointSession>,
        policy: Option<Arc<ChaosPolicy>>,
    ) -> StreamOutcome {
        let run_start = Instant::now();
        let grid = self.grid();
        let shard = self.config.shard;
        let total = grid.shard_len(shard);
        if total == 0 {
            return StreamOutcome::default();
        }
        let setup_ctx = self.tracer.ctx(0);
        let campaign_span = setup_ctx.span("campaign");
        let base_worlds =
            self.config.reuse_snapshots.then(|| self.boot_base_worlds(&setup_ctx, &grid));
        let workers = jobs.max(1).min(usize::try_from(total).unwrap_or(usize::MAX));
        let queue_depth = self.config.queue_depth.unwrap_or_else(|| (workers * 2).max(8));
        let queue: BoundedQueue<CellSpec> = BoundedQueue::new(queue_depth);
        let resident = ResidentGauge::default();
        let folds: Mutex<Vec<PartialFold>> = Mutex::new(Vec::with_capacity(workers));
        let first_worker = session.as_ref().map_or(1, |s| s.first_worker);
        let flights: Vec<FlightHandle> =
            (0..workers).map(|_| FlightHandle::new(self.config.flight_capacity)).collect();
        let live_total =
            total.saturating_sub(session.as_ref().map_or(0, CheckpointSession::resumed_slots));
        let telemetry = Telemetry::new(live_total, workers);
        {
            let session = session.as_ref();
            let policy = policy.as_deref();
            std::thread::scope(|scope| {
                scope.spawn(|| {
                    for spec in grid.shard_iter(shard) {
                        if session.is_some_and(|s| s.is_done(spec.slot)) {
                            continue;
                        }
                        if let Some(stall) = policy.and_then(|p| p.queue_stall(spec.slot)) {
                            std::thread::sleep(stall);
                        }
                        resident.enter();
                        queue.push(spec);
                    }
                    queue.close();
                });
                for (index, flight) in flights.iter().enumerate() {
                    let worker_id = first_worker + index as u64;
                    let queue = &queue;
                    let resident = &resident;
                    let folds = &folds;
                    let base_worlds = &base_worlds;
                    let telemetry = &telemetry;
                    scope.spawn(move || {
                        let mut cache: BaseCache = BTreeMap::new();
                        let mut fold = PartialFold::default();
                        let mut seq = 0u64;
                        let mut batch: Vec<u64> = Vec::new();
                        let mut pending = crate::checkpoint::SlotBuffer::default();
                        while let Some(spec) = queue.pop() {
                            telemetry.beat(index);
                            let started = Instant::now();
                            let ctx = self.tracer.ctx(spec.slot + 1);
                            let uc = &*self.use_cases[spec.use_case];
                            // Chaos decisions are slot-keyed and made
                            // exactly once, here — the only place that
                            // knows both the slot and the cell.
                            let (chaos_panic, chaos_slow, chaos_boot_faults) = policy
                                .map_or((false, None, 0), |p| {
                                    (
                                        p.worker_panic(spec.slot),
                                        p.slowdown(spec.slot, self.config.cell_deadline),
                                        p.transient_boot_faults(spec.slot, self.config.retries),
                                    )
                                });
                            // Chaos decisions land in the flight ring
                            // too: a degraded cell's forensic tail shows
                            // which fault was injected, not just its
                            // effect. All three are pure functions of
                            // (seed, slot), so tails stay deterministic.
                            if chaos_panic {
                                flight.record(spec.slot, "chaos/worker_panic", 0);
                            }
                            if let Some(slow) = chaos_slow {
                                flight.record_with(
                                    spec.slot,
                                    "chaos/slowdown",
                                    slow.as_micros() as u64,
                                    |d| d.push_str("2x deadline"),
                                );
                            }
                            if chaos_boot_faults > 0 {
                                flight.record_with(spec.slot, "chaos/transient_boots", 0, |d| {
                                    let _ = write!(d, "faults={chaos_boot_faults}");
                                });
                            }
                            let chaos_uc;
                            let run_uc: &dyn UseCase = if chaos_panic || chaos_slow.is_some() {
                                chaos_uc = ChaosUseCase::new(uc, chaos_panic, chaos_slow);
                                &chaos_uc
                            } else {
                                uc
                            };
                            // Forced transient boots take the fresh-boot
                            // path (snapshot clones are proven identical
                            // to fresh boots, so the report is unmoved).
                            let worlds = if chaos_boot_faults > 0 {
                                None
                            } else {
                                base_worlds.as_ref().map(|worlds| (worlds, &mut cache))
                            };
                            let mut cell = self.run_cell_contained(
                                &ctx,
                                run_uc,
                                spec.version,
                                spec.mode,
                                spec.trial,
                                worlds,
                                chaos_boot_faults,
                                flight,
                                spec.slot,
                            );
                            if self.config.cell_deadline.is_some_and(|d| started.elapsed() > d) {
                                flight.record(spec.slot, "cell/deadline_exceeded", 0);
                                cell = self.timed_out_cell(
                                    uc,
                                    spec.version,
                                    spec.mode,
                                    Some(cell.phase_us),
                                );
                            }
                            if cell.degraded() {
                                cell.flight = flight.tail(spec.slot);
                            }
                            telemetry.cell_done(cell.degraded());
                            fold.fold(&spec, &cell);
                            if let Some(s) = session {
                                let journal_span = ctx.span("cell/journal");
                                seq += 1;
                                s.record_slot(
                                    &mut pending,
                                    worker_id,
                                    seq,
                                    spec.slot,
                                    slot_digest(&cell),
                                );
                                batch.push(spec.slot);
                                if batch.len() as u64 >= s.interval {
                                    seq += 1;
                                    s.record_fold(
                                        &mut pending,
                                        worker_id,
                                        seq,
                                        std::mem::take(&mut batch),
                                        &fold,
                                    );
                                }
                                drop(journal_span);
                            }
                            resident.exit();
                        }
                        if let Some(s) = session {
                            if !batch.is_empty() {
                                seq += 1;
                                s.record_fold(&mut pending, worker_id, seq, batch, &fold);
                            }
                        }
                        lock_recover(folds).push(fold);
                        telemetry.worker_finished(index);
                    });
                }
                if self.supervisor_wanted() {
                    let supervisor = self.supervisor(&flights);
                    let telemetry = &telemetry;
                    let queue = &queue;
                    let resident = &resident;
                    scope.spawn(move || {
                        supervisor.run(telemetry, &|values| {
                            values.push(("queue.depth".to_owned(), queue.len() as u64));
                            values.push(("resident.cells".to_owned(), resident.current()));
                            values.push(("resident.peak".to_owned(), resident.peak()));
                            values.push(("queue.push_stall_us".to_owned(), queue.push_stall_us()));
                            values.push(("queue.pop_stall_us".to_owned(), queue.pop_stall_us()));
                            if let Some(s) = session {
                                let counters = s.writer.counters();
                                values.push(("checkpoint.slots".to_owned(), counters.slots));
                                values.push(("checkpoint.folds".to_owned(), counters.folds));
                                values.push(("checkpoint.syncs".to_owned(), counters.syncs));
                                values.push(("checkpoint.bytes".to_owned(), counters.bytes));
                            }
                            if let Some(p) = policy {
                                let (panics, boots, slowdowns, stalls, torn) = p.fired();
                                values.push((
                                    "chaos.fired".to_owned(),
                                    panics + boots + slowdowns + stalls + torn,
                                ));
                            }
                        });
                    });
                }
            });
        }
        let merge_start = Instant::now();
        let mut parts = folds.into_inner().unwrap_or_else(PoisonError::into_inner);
        if let Some(s) = &session {
            parts.extend(s.recovered.iter().cloned());
        }
        // Merge in first-slot order. All aggregates commute, so this is
        // for reproducibility of intermediate states, not correctness.
        parts.sort_by_key(|fold| fold.first_slot().unwrap_or(u64::MAX));
        let mut whole = PartialFold::default();
        for part in &parts {
            whole.absorb(part);
        }
        let merge_us = merge_start.elapsed().as_micros() as u64;
        drop(campaign_span);
        let (mut report, phases) = whole.finish();
        report.grid = self.fingerprint();
        report.coverage = vec![shard.unwrap_or(Shard { index: 0, count: 1 })];
        let elapsed_us = (run_start.elapsed().as_micros() as u64).max(1);
        let stats = StreamRunStats {
            workers: workers as u64,
            queue_depth: queue_depth as u64,
            elapsed_us,
            cells_per_sec: report.completed as f64 * 1_000_000.0 / elapsed_us as f64,
            peak_resident_cells: resident.peak(),
            queue_stall_us: queue.push_stall_us(),
            worker_stall_us: queue.pop_stall_us(),
            merge_us,
            base_world_wait_us: base_worlds.as_ref().map_or(0, BaseWorlds::wait_us),
        };
        if let Some(registry) = &self.metrics {
            obs_bridge::record_stream_metrics(&report, &phases, &stats, registry);
            if let Some(s) = &session {
                obs_bridge::record_checkpoint_metrics(
                    &s.writer.counters(),
                    s.resumed_slots(),
                    registry,
                );
            }
            // Published whenever chaos is configured — even a no-op or
            // quiet policy records explicit zeros, so dashboards can
            // tell "chaos quiet" from "chaos off".
            if self.config.chaos.is_some() {
                obs_bridge::record_chaos_metrics(policy.as_deref(), registry);
            }
        }
        StreamOutcome { report, stats }
    }

    /// Boots every `(version, injector_enabled)` base world the grid
    /// can need, under the setup trace context. A base world that fails
    /// to boot (or panics the factory) poisons only the cells that need
    /// it — the error is cloned into each.
    fn boot_base_worlds(&self, setup_ctx: &TraceCtx, grid: &SpecGrid) -> BaseWorlds {
        let worlds = BaseWorlds::new(
            Arc::clone(&self.factory),
            self.config.retries,
            self.metrics.clone(),
        );
        let mut map = lock_recover(&worlds.map);
        for &version in grid.versions() {
            for &mode in grid.modes() {
                let injector = mode == Mode::Injection;
                map.entry((version, injector)).or_insert_with(|| {
                    let span = setup_ctx.span_with("campaign/snapshot_boot", || {
                        vec![
                            ("version".to_owned(), version.to_string()),
                            ("injector".to_owned(), injector.to_string()),
                        ]
                    });
                    let (world, attempts, backoff_us) = boot_world(
                        &|v, i| (self.factory)(v, i),
                        version,
                        injector,
                        self.config.retries,
                    );
                    if backoff_us > 0 {
                        if let Some(registry) = &self.metrics {
                            registry.add(obs_bridge::M_RETRY_BACKOFF_US, backoff_us);
                        }
                    }
                    if let Ok(world) = &world {
                        obs_bridge::bridge_boot_stages(
                            setup_ctx,
                            "campaign/snapshot_boot",
                            world.boot_trace(),
                        );
                    }
                    setup_ctx.point("campaign/snapshot_boot/result", 0, || {
                        vec![
                            ("attempts".to_owned(), attempts.to_string()),
                            ("ok".to_owned(), world.is_ok().to_string()),
                        ]
                    });
                    drop(span);
                    Arc::new(world)
                });
            }
        }
        drop(map);
        worlds
    }

    /// Runs one cell on the calling thread with panic containment
    /// around each phase: world acquisition, the scenario body, and
    /// monitoring. Never panics; every failure becomes a typed cell.
    ///
    /// Each phase runs under a trace span and records its wall-clock
    /// duration in the cell's [`PhaseTimings`] — degraded cells too, so
    /// a crash or timeout is attributable to the phase that ate the
    /// time. Audit events the cell generated (everything past the
    /// acquired world's baseline) are bridged into the trace before
    /// every return.
    /// `boot_faults` > 0 (chaos only) makes the first that many factory
    /// calls fail with a transient [`BootError`], exercising the real
    /// retry/backoff path; the caller forces the fresh-boot arm first.
    #[allow(clippy::too_many_arguments)]
    fn run_cell_contained(
        &self,
        ctx: &TraceCtx,
        uc: &dyn UseCase,
        version: XenVersion,
        mode: Mode,
        trial: u64,
        worlds: Option<(&BaseWorlds, &mut BaseCache)>,
        boot_faults: u32,
        flight: &FlightHandle,
        slot: u64,
    ) -> CellResult {
        let start = Instant::now();
        let mut phases = PhaseTimings::default();
        let _cell_span = ctx.span_with("cell", || {
            vec![
                ("use_case".to_owned(), uc.name().to_owned()),
                ("version".to_owned(), version.to_string()),
                ("mode".to_owned(), mode.to_string()),
            ]
        });
        flight.record_with(slot, "cell/start", 0, |d| {
            let _ = write!(d, "{}/{version}/{mode} trial={trial}", uc.name());
        });
        // Phase 1: world acquisition. `AssertUnwindSafe` is sound here:
        // the base snapshot is only read through `&` during `Clone`, and
        // a partially-cloned world is dropped inside the boundary — no
        // broken state can leak to other cells.
        let boot_span = ctx.span("cell/boot");
        let boot_start = Instant::now();
        let fresh_boot = worlds.is_none();
        // Base-world lookup runs under its own span unconditionally
        // (one event per reuse-mode cell — deterministic), so any
        // residual wait on the shared map is visible as self-time in
        // the trace profiler. With warm per-worker caches it is a
        // lock-free BTreeMap hit.
        let acquired = worlds.map(|(worlds, cache)| {
            let wait_span = ctx.span("cell/boot/base_wait");
            let base = worlds.get(cache, (version, mode == Mode::Injection));
            drop(wait_span);
            base
        });
        let (world, attempts, backoff_us) = match acquired.as_deref() {
            Some(Ok(base)) => (
                catch_unwind(AssertUnwindSafe(|| base.clone())).map_err(|p| {
                    CampaignError::HarnessCrash { payload: panic_payload(p.as_ref()) }
                }),
                1,
                0,
            ),
            Some(Err(e)) => (Err(e.clone()), 1, 0),
            None => {
                let remaining_faults = std::cell::Cell::new(boot_faults);
                boot_world(
                    &|v, i| {
                        if remaining_faults.get() > 0 {
                            remaining_faults.set(remaining_faults.get() - 1);
                            return Err(BootError::transient(
                                "chaos",
                                "injected transient boot failure",
                            ));
                        }
                        (self.factory)(v, i)
                    },
                    version,
                    mode == Mode::Injection,
                    self.config.retries,
                )
            }
        };
        if backoff_us > 0 {
            if let Some(registry) = &self.metrics {
                registry.add(obs_bridge::M_RETRY_BACKOFF_US, backoff_us);
            }
        }
        phases.boot_us = Some(boot_start.elapsed().as_micros() as u64);
        ctx.point("cell/boot/result", 0, || {
            vec![
                ("attempts".to_owned(), attempts.to_string()),
                ("source".to_owned(), if fresh_boot { "boot" } else { "snapshot" }.to_owned()),
                ("ok".to_owned(), world.is_ok().to_string()),
            ]
        });
        flight.record_with(slot, "cell/boot/result", phases.boot_us.unwrap_or(0), |d| {
            let _ = write!(
                d,
                "attempts={attempts} source={} ok={}",
                if fresh_boot { "boot" } else { "snapshot" },
                world.is_ok()
            );
        });
        drop(boot_span);
        let mut world = match world {
            Ok(world) => world,
            Err(error) => {
                let wall = start.elapsed().as_micros() as u64;
                flight.record_with(slot, "cell/degraded", 0, |d| {
                    let _ = write!(d, "{error}");
                });
                return self.degraded_cell(uc, version, mode, error, attempts, wall, phases);
            }
        };
        if self.config.disable_tlb {
            world.set_tlb_enabled(false);
        }
        if fresh_boot {
            obs_bridge::bridge_boot_stages(ctx, "cell/boot", world.boot_trace());
            flight.with_recorder(|recorder| {
                for stage in world.boot_trace() {
                    recorder.record_parts(slot, stage.wall_us, |path, _| {
                        path.push_str("cell/boot/");
                        path.push_str(stage.stage);
                    });
                }
            });
        }
        let base_hypercalls = world.hv().hypercall_count();
        // Audit events up to here belong to the world's boot (or to the
        // snapshot it was cloned from); everything past this baseline is
        // this cell's doing and gets bridged into its trace shard.
        let audit_baseline = world.hv().audit().events().len();
        // Traces get the cell's audit events unconditionally; the
        // flight ring gets them only when the cell degrades. A clean
        // cell's audits can never surface in a forensic tail (tails
        // filter by slot), so recording them would only pay the
        // per-hypercall cost — the bulk of a cell's event volume — for
        // data nothing can read back.
        let bridge_audit = |world: &World, degrading: bool| {
            let events = world.hv().audit().events();
            let fresh = events.get(audit_baseline..).unwrap_or(&[]);
            obs_bridge::bridge_audit(ctx, fresh);
            if degrading {
                obs_bridge::bridge_audit_flight(flight, slot, fresh);
            }
        };
        let Some(attacker) =
            world.domain_by_name(ATTACKER_GUEST).or_else(|| world.domains().last().copied())
        else {
            let error = CampaignError::Boot {
                message: "world booted with no domains".to_owned(),
                attempts,
            };
            let wall = start.elapsed().as_micros() as u64;
            flight.record_with(slot, "cell/degraded", 0, |d| {
                let _ = write!(d, "{error}");
            });
            return self.degraded_cell(uc, version, mode, error, attempts, wall, phases);
        };

        // Phase 2: the scenario body. The world is owned by this cell,
        // so a panicking exploit/injector takes only its own clone down.
        let inject_span = ctx.span("cell/inject");
        let inject_start = Instant::now();
        let outcome = catch_unwind(AssertUnwindSafe(|| match mode {
            Mode::Exploit => uc.run_exploit_trial(&mut world, attacker, trial),
            Mode::Injection => {
                uc.run_injection_trial(&mut world, attacker, &ArbitraryAccessInjector, trial)
            }
        }));
        phases.inject_us = Some(inject_start.elapsed().as_micros() as u64);
        drop(inject_span);
        flight.record_with(slot, "cell/inject", phases.inject_us.unwrap_or(0), |d| {
            let _ = write!(d, "ok={}", outcome.is_ok());
        });
        let outcome = match outcome {
            Ok(outcome) => outcome,
            Err(p) => {
                let error = CampaignError::HarnessCrash { payload: panic_payload(p.as_ref()) };
                let wall = start.elapsed().as_micros() as u64;
                bridge_audit(&world, true);
                flight.record_with(slot, "cell/degraded", 0, |d| {
                    let _ = write!(d, "{error}");
                });
                return self.degraded_cell(uc, version, mode, error, attempts, wall, phases);
            }
        };

        // Phase 3: monitoring, with per-detector containment — one
        // panicking detector costs its own observations, not the cell's.
        let monitor_span = ctx.span("cell/monitor");
        let monitor_start = Instant::now();
        let observed = catch_unwind(AssertUnwindSafe(|| {
            uc.monitor(&world, attacker).observe_contained(&world)
        }));
        phases.monitor_us = Some(monitor_start.elapsed().as_micros() as u64);
        drop(monitor_span);
        flight.record_with(slot, "cell/monitor", phases.monitor_us.unwrap_or(0), |d| {
            let _ = write!(d, "ok={}", observed.is_ok());
        });
        let (observation, detector_failures) = match observed {
            Ok(observed) => observed,
            Err(p) => {
                let error = CampaignError::Monitor { message: panic_payload(p.as_ref()) };
                let wall = start.elapsed().as_micros() as u64;
                bridge_audit(&world, true);
                flight.record_with(slot, "cell/degraded", 0, |d| {
                    let _ = write!(d, "{error}");
                });
                return self.degraded_cell(uc, version, mode, error, attempts, wall, phases);
            }
        };
        let error = if detector_failures.is_empty() {
            outcome.error.map(|message| CampaignError::Injection { message })
        } else {
            Some(CampaignError::Monitor { message: detector_failures.join("; ") })
        };

        // A completed cell still degrades when its error is a harness
        // failure (detector panics), so that tail keeps its audits too.
        bridge_audit(&world, error.as_ref().is_some_and(CampaignError::is_harness_failure));
        let handled = outcome.erroneous_state && observation.is_clean();
        flight.record_with(slot, "cell/done", 0, |d| {
            let _ = write!(
                d,
                "erroneous_state={} violations={} handled={handled}",
                outcome.erroneous_state,
                observation.violations.len()
            );
        });
        CellResult {
            use_case: uc.name().to_owned(),
            abusive_functionality: uc.intrusion_model().abusive_functionality.label().to_owned(),
            version,
            mode,
            erroneous_state: outcome.erroneous_state,
            violations: observation.violations,
            handled,
            notes: outcome.notes,
            error,
            outcome: CellOutcome::Completed,
            attempts,
            wall_time_us: 0, // patched below, after the clock stops
            hypercalls: world.hv().hypercall_count().saturating_sub(base_hypercalls),
            phase_us: phases,
            snapshot: world.snapshot_stats(),
            tlb: world.tlb_stats(),
            flight: Vec::new(),
        }
        .with_wall_time(start.elapsed().as_micros() as u64)
    }

    /// A cell record for a harness failure (boot / crash / monitor).
    // Private helper mirroring the cell-result fields one-to-one; a
    // params struct would just restate `CellResult`.
    #[allow(clippy::too_many_arguments)]
    fn degraded_cell(
        &self,
        uc: &dyn UseCase,
        version: XenVersion,
        mode: Mode,
        error: CampaignError,
        attempts: u32,
        wall_time_us: u64,
        phases: PhaseTimings,
    ) -> CellResult {
        let cell_id =
            || CellId { use_case: uc.name().to_owned(), version, mode };
        let outcome = match &error {
            CampaignError::Boot { .. } => CellOutcome::BootFailed,
            CampaignError::Deadline { deadline_us } => {
                CellOutcome::TimedOut { deadline_us: *deadline_us }
            }
            CampaignError::HarnessCrash { payload } => {
                CellOutcome::Crashed { payload: payload.clone(), cell: cell_id() }
            }
            CampaignError::Monitor { message } => {
                CellOutcome::Crashed { payload: message.clone(), cell: cell_id() }
            }
            CampaignError::Injection { .. } => CellOutcome::Completed,
        };
        CellResult {
            use_case: uc.name().to_owned(),
            abusive_functionality: uc.intrusion_model().abusive_functionality.label().to_owned(),
            version,
            mode,
            erroneous_state: false,
            violations: Vec::new(),
            handled: false,
            notes: Vec::new(),
            error: Some(error),
            outcome,
            attempts,
            wall_time_us,
            hypercalls: 0,
            phase_us: phases,
            snapshot: SnapshotStats::default(),
            tlb: TlbStats::default(),
            flight: Vec::new(),
        }
    }

    /// A cell record for a watchdog-abandoned cell. `phases` carries the
    /// per-phase timings when the worker eventually finished (so the
    /// overrun is attributable to boot vs inject vs monitor); `None`
    /// means the worker was still stuck at collection time.
    fn timed_out_cell(
        &self,
        uc: &dyn UseCase,
        version: XenVersion,
        mode: Mode,
        phases: Option<PhaseTimings>,
    ) -> CellResult {
        let deadline_us =
            self.config.cell_deadline.map_or(0, |d| d.as_micros() as u64);
        let mut cell = self.degraded_cell(
            uc,
            version,
            mode,
            CampaignError::Deadline { deadline_us },
            1,
            deadline_us,
            phases.unwrap_or_default(),
        );
        cell.outcome = CellOutcome::TimedOut { deadline_us };
        cell
    }
}

/// Key of a base world: `(version, injector_enabled)`.
type BaseKey = (XenVersion, bool);

/// A shared handle to one pre-booted base world (or its boot error,
/// which poisons only the cells that need that world).
type BaseRef = Arc<Result<World, CampaignError>>;

/// A worker's private cache of base-world handles. Once a worker has
/// seen a key, acquiring that base world is a local read — no shared
/// state on the per-cell hot path.
type BaseCache = BTreeMap<BaseKey, BaseRef>;

/// The campaign's base worlds: pre-booted once per `(version,
/// injector)` key behind a mutex that workers consult only on a
/// per-worker cache miss (at most once per key per worker). The mutex
/// that used to be on the per-cell path is gone; `wait_us` records the
/// residual cold-miss wait so the win stays measurable.
struct BaseWorlds {
    factory: WorldFactory,
    retries: u32,
    map: Mutex<BTreeMap<BaseKey, BaseRef>>,
    wait_us: AtomicU64,
    metrics: Option<MetricsRegistry>,
}

impl BaseWorlds {
    fn new(factory: WorldFactory, retries: u32, metrics: Option<MetricsRegistry>) -> Self {
        Self {
            factory,
            retries,
            map: Mutex::new(BTreeMap::new()),
            wait_us: AtomicU64::new(0),
            metrics,
        }
    }

    /// The handle for `key`, from the worker's cache when warm. A cold
    /// miss takes the shared lock (recording the wait) and, for a key
    /// that was somehow never pre-booted, boots it lazily under the
    /// lock so the result is still one world per key.
    fn get(&self, cache: &mut BaseCache, key: BaseKey) -> BaseRef {
        if let Some(base) = cache.get(&key) {
            return Arc::clone(base);
        }
        let started = Instant::now();
        let mut map = lock_recover(&self.map);
        let waited = started.elapsed().as_micros() as u64;
        if waited > 0 {
            self.wait_us.fetch_add(waited, Ordering::Relaxed);
        }
        let base = Arc::clone(map.entry(key).or_insert_with(|| {
            let (world, _, backoff_us) =
                boot_world(&|v, i| (self.factory)(v, i), key.0, key.1, self.retries);
            if backoff_us > 0 {
                if let Some(registry) = &self.metrics {
                    registry.add(obs_bridge::M_RETRY_BACKOFF_US, backoff_us);
                }
            }
            Arc::new(world)
        }));
        drop(map);
        cache.insert(key, Arc::clone(&base));
        base
    }

    /// Total cold-miss wait on the shared map, µs.
    fn wait_us(&self) -> u64 {
        self.wait_us.load(Ordering::Relaxed)
    }
}

/// One result slot's lifecycle, watched by the deadline watchdog.
enum CellSlot {
    /// Not picked up by a worker yet.
    Pending,
    /// A worker entered the cell body at `started`.
    Running { started: Instant },
    /// The watchdog (or the worker's own post-check) abandoned the cell.
    /// `phases` is filled in by the worker when it finishes late, so the
    /// deadline overrun is attributable to a specific phase.
    TimedOut { phases: Option<PhaseTimings> },
    /// The cell finished in time.
    Done(Box<CellResult>),
}

/// Hard ceiling on total backoff sleep per world boot, µs. Keeps the
/// retry loop's worst case well under any sane cell deadline: deadlines
/// dominate, backoff only spaces the attempts out.
const MAX_BOOT_BACKOFF_US: u64 = 20_000;

/// The backoff before retry number `attempt` of a transient boot
/// failure: exponential from 200µs (doubling per attempt, capped at
/// 5ms), scaled by a deterministic ±25% jitter keyed on `(key,
/// attempt)` — seeded, not sampled, so reruns sleep the same schedule
/// and reports stay reproducible.
pub(crate) fn retry_backoff_us(key: &str, attempt: u32) -> u64 {
    let base = (200u64 << attempt.min(6).saturating_sub(1)).min(5_000);
    let salt = format!("{key}/{attempt}");
    let jitter = 750 + splitmix64(fnv64(salt.as_bytes())) % 501;
    base * jitter / 1000
}

/// Boots one world through the factory with panic containment and the
/// bounded retry policy: transient failures (`BootError::is_transient`)
/// are retried up to `retries` extra times with deterministic
/// exponential backoff (total sleep capped at [`MAX_BOOT_BACKOFF_US`]);
/// deterministic failures and factory panics fail immediately. Returns
/// the attempts consumed and the backoff slept, µs.
fn boot_world(
    factory: &dyn Fn(XenVersion, bool) -> Result<World, BootError>,
    version: XenVersion,
    injector: bool,
    retries: u32,
) -> (Result<World, CampaignError>, u32, u64) {
    let mut attempts = 0u32;
    let mut backoff_us = 0u64;
    loop {
        attempts += 1;
        match catch_unwind(AssertUnwindSafe(|| factory(version, injector))) {
            Ok(Ok(world)) => return (Ok(world), attempts, backoff_us),
            Ok(Err(boot)) if boot.is_transient() && attempts <= retries => {
                let sleep = retry_backoff_us(&format!("{version}/{injector}"), attempts)
                    .min(MAX_BOOT_BACKOFF_US.saturating_sub(backoff_us));
                if sleep > 0 {
                    std::thread::sleep(Duration::from_micros(sleep));
                    backoff_us += sleep;
                }
            }
            Ok(Err(boot)) => {
                return (
                    Err(CampaignError::Boot { message: boot.to_string(), attempts }),
                    attempts,
                    backoff_us,
                )
            }
            Err(p) => {
                return (
                    Err(CampaignError::HarnessCrash { payload: panic_payload(p.as_ref()) }),
                    attempts,
                    backoff_us,
                )
            }
        }
    }
}

/// The deadline watchdog: polls running slots and re-labels any that
/// overran the deadline `TimedOut`, so result collection can report them
/// without waiting on the stuck worker. Cooperative by design —
/// `std::thread::scope` still joins every worker, so a cell body that
/// *never* returns holds campaign exit; the watchdog's job is to keep
/// the *report* complete and correctly labelled.
fn watchdog(
    slots: &[Mutex<CellSlot>],
    completed: &AtomicUsize,
    total: usize,
    deadline: Duration,
) {
    let poll = (deadline / 10).max(Duration::from_millis(1));
    while completed.load(Ordering::Acquire) < total {
        for slot in slots {
            let mut slot = lock_recover(slot);
            if let CellSlot::Running { started } = *slot {
                if started.elapsed() > deadline {
                    *slot = CellSlot::TimedOut { phases: None };
                }
            }
        }
        std::thread::sleep(poll);
    }
}

impl CellResult {
    fn with_wall_time(mut self, wall_time_us: u64) -> Self {
        self.wall_time_us = wall_time_us;
        self
    }
}

impl Default for Campaign {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::erroneous_state::ErroneousStateSpec;
    use crate::injector::Injector;
    use crate::model::IntrusionModel;
    use crate::scenario::ScenarioOutcome;
    use crate::taxonomy::AbusiveFunctionality;
    use hvsim_mem::DomainId;

    /// A synthetic use case: injects IDT corruption and triggers a fault.
    struct CrashCase;

    impl UseCase for CrashCase {
        fn name(&self) -> &'static str {
            "synthetic-crash"
        }

        fn intrusion_model(&self) -> IntrusionModel {
            IntrusionModel::guest_hypercall_memory(
                "IM-test",
                AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
                &["XSA-212"],
            )
        }

        fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
            // "Exploit" stand-in: only works where XSA-212 exists.
            let vulnerable = world.hv().version().is_vulnerable();
            if !vulnerable {
                return ScenarioOutcome::failed("-EFAULT (bad address)");
            }
            let spec = ErroneousStateSpec::OverwriteIdtGate { cpu: 0, vector: 14, value: 0x41 };
            let gate_va = world.hv().sidt(0).offset(14 * 16);
            let args = hvsim::ExchangeArgs::write_what_where(gate_va, 0x41, 0);
            let _ = world.hv_mut().hc_memory_exchange(attacker, &args);
            let audit = spec.audit(world);
            let mut out = ScenarioOutcome {
                erroneous_state: audit.present,
                state_audit: Some(audit),
                notes: vec![],
                error: None,
            };
            let mut buf = [0u8; 1];
            let _ = world
                .hv_mut()
                .guest_read_va(attacker, hvsim_mem::VirtAddr::new(0x7f00_0000_0000), &mut buf);
            out.note("triggered page fault");
            out
        }

        fn run_injection(
            &self,
            world: &mut World,
            attacker: DomainId,
            injector: &dyn Injector,
        ) -> ScenarioOutcome {
            let spec = ErroneousStateSpec::OverwriteIdtGate { cpu: 0, vector: 14, value: 0x41 };
            match injector.inject(world, attacker, &spec) {
                Ok(ev) => {
                    let mut buf = [0u8; 1];
                    let _ = world.hv_mut().guest_read_va(
                        attacker,
                        hvsim_mem::VirtAddr::new(0x7f00_0000_0000),
                        &mut buf,
                    );
                    ScenarioOutcome {
                        erroneous_state: true,
                        state_audit: Some(ev.audit),
                        notes: vec!["injected and triggered".into()],
                        error: None,
                    }
                }
                Err(e) => ScenarioOutcome::failed(e.to_string()),
            }
        }
    }

    #[test]
    fn campaign_produces_full_matrix() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        assert_eq!(report.cells().len(), 6, "3 versions x 2 modes");
        // Exploit works only on 4.6.
        let e46 = report.cell("synthetic-crash", XenVersion::V4_6, Mode::Exploit).unwrap();
        assert!(e46.erroneous_state);
        assert!(e46.violated());
        let e48 = report.cell("synthetic-crash", XenVersion::V4_8, Mode::Exploit).unwrap();
        assert!(!e48.erroneous_state);
        assert_eq!(
            e48.error,
            Some(CampaignError::Injection { message: "-EFAULT (bad address)".into() })
        );
        assert_eq!(e48.outcome, CellOutcome::Completed);
        assert!(!e48.degraded(), "a failed exploit attempt is data, not degradation");
        // Injection works everywhere and the crash follows everywhere.
        for v in XenVersion::ALL {
            let c = report.cell("synthetic-crash", v, Mode::Injection).unwrap();
            assert!(c.erroneous_state, "injection on {v}");
            assert!(c.violated(), "crash on {v}");
            assert!(!c.handled);
        }
    }

    #[test]
    fn report_renderers_produce_tables() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        let t2 = report.render_table2();
        assert!(t2.contains("synthetic-crash"));
        assert!(t2.contains("Write Unauthorized Arbitrary Memory"));
        let t3 = report.render_table3();
        assert!(t3.contains("4.13 Sec. Viol."));
        assert!(t3.contains(CHECK));
        let f4 = report.render_fig4();
        assert!(f4.contains("yes"), "exploit and injection equivalent on 4.6:\n{f4}");
        let f2 = report.render_fig2("synthetic-crash", XenVersion::V4_6);
        assert!(f2.contains("traditional"));
        assert!(f2.contains("injection"));
        let json = report.to_json().unwrap();
        assert!(json.contains("\"use_case\""));
    }

    #[test]
    fn worker_count_and_snapshot_reuse_do_not_change_the_report() {
        let campaign = Campaign::new().with_use_case(Box::new(CrashCase));
        let serial = campaign.run_with_jobs(1).normalized().to_json().unwrap();
        let parallel = campaign.run_with_jobs(8).normalized().to_json().unwrap();
        assert_eq!(serial, parallel, "jobs=1 and jobs=8 reports must be byte-identical");
        let booted = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .reuse_snapshots(false)
            .run_with_jobs(2)
            .normalized()
            .to_json()
            .unwrap();
        assert_eq!(serial, booted, "snapshot clones must equal fresh boots");
    }

    #[test]
    fn tlb_toggle_does_not_change_the_report() {
        let with_tlb = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .run_with_jobs(2);
        let without_tlb = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .use_tlb(false)
            .run_with_jobs(2);
        assert_eq!(
            with_tlb.normalized().to_json().unwrap(),
            without_tlb.normalized().to_json().unwrap(),
            "the TLB must be semantically transparent"
        );
        // The raw (non-normalized) stats prove the toggle took effect:
        // an enabled TLB counts every lookup (the synthetic use case is
        // too small to guarantee repeat hits, but not lookups).
        let lookups: u64 = with_tlb.cells().iter().map(|c| c.tlb.hits + c.tlb.misses).sum();
        assert!(lookups > 0, "an enabled TLB observes translations during a campaign");
        for c in without_tlb.cells() {
            assert_eq!(c.tlb, hvsim::TlbStats::default(), "disabled TLB records nothing");
        }
    }

    #[test]
    fn snapshot_cells_record_cow_stats() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run_with_jobs(1);
        for c in report.cells() {
            assert!(c.snapshot.frames_total > 0, "cells report their world size");
            assert!(
                c.snapshot.frames_copied < c.snapshot.frames_total / 4,
                "COW must materialize a small fraction of the world, got {}/{}",
                c.snapshot.frames_copied,
                c.snapshot.frames_total
            );
        }
        let copied: u64 = report.cells().iter().map(|c| c.snapshot.frames_copied).sum();
        assert!(copied > 0, "cells that write dirty shared frames via COW");
        // Normalization zeroes the schedule-dependent stats.
        for c in report.normalized().cells() {
            assert_eq!(c.snapshot, hvsim::SnapshotStats::default());
            assert_eq!(c.tlb, hvsim::TlbStats::default());
        }
        // The throughput record aggregates them.
        let t = CampaignThroughput::new(&report, 1, 1);
        assert!(t.snapshot.frames_copied > 0);
        assert_eq!(t.snapshot.frames_total, 4096, "the standard world's frame count");
    }

    #[test]
    fn hypercall_counter_matches_canonical_per_cell_sum() {
        // The compatibility shim: the per-cell sum in the report is the
        // canonical count (see `report::canonical_hypercall_total`); the
        // `campaign.hypercalls` registry counter is derived from it and
        // the two must always agree.
        let registry = MetricsRegistry::new();
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .metrics(registry.clone())
            .run_with_jobs(2);
        let canonical = crate::report::canonical_hypercall_total(&report);
        assert_eq!(canonical, report.total_hypercalls());
        let counter = report
            .metrics()
            .expect("metrics snapshot attached")
            .counters
            .iter()
            .find(|c| c.name == crate::obs_bridge::M_HYPERCALLS)
            .expect("campaign.hypercalls counter");
        assert_eq!(counter.value, canonical, "registry counter must equal the canonical sum");
        assert!(canonical > 0);
    }

    #[test]
    fn cells_record_timing_and_hypercalls() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        // Every injection cell goes through the injector's hypercalls.
        for c in report.cells().iter().filter(|c| c.mode == Mode::Injection) {
            assert!(c.hypercalls > 0, "injection on {} made no hypercalls", c.version);
        }
        assert!(report.total_hypercalls() > 0);
        assert!(report.total_wall_time_us() > 0);
        // Normalization zeroes the only non-deterministic field.
        assert!(report.normalized().cells().iter().all(|c| c.wall_time_us == 0));
        let t = CampaignThroughput::new(&report, 2, 1_000_000);
        assert_eq!(t.cells, report.cells().len());
        assert_eq!(t.completed_cells, report.cells().len(), "clean run: all cells complete");
        assert_eq!(t.degraded_cells, 0);
        assert!((t.cells_per_sec - t.completed_cells as f64).abs() < 1e-9);
    }

    #[test]
    fn cells_record_phase_timings() {
        let report = Campaign::new().with_use_case(Box::new(CrashCase)).run();
        for c in report.cells() {
            assert!(c.phase_us.boot_us.is_some(), "boot phase timed on {}", c.version);
            assert!(c.phase_us.inject_us.is_some(), "inject phase timed on {}", c.version);
            assert!(c.phase_us.monitor_us.is_some(), "monitor phase timed on {}", c.version);
        }
        // Normalization keeps phase presence but zeroes the durations.
        for c in report.normalized().cells() {
            assert_eq!(c.phase_us.boot_us, Some(0));
            assert_eq!(c.phase_us.inject_us, Some(0));
            assert_eq!(c.phase_us.monitor_us, Some(0));
        }
        let t = CampaignThroughput::new(&report, 1, 1_000_000);
        assert_eq!(t.latency.boot.completed.count as usize, report.cells().len());
        assert_eq!(t.latency.monitor.degraded.count, 0, "clean run: no degraded latencies");
    }

    #[test]
    fn tracer_and_metrics_capture_the_campaign() {
        let tracer = Tracer::enabled();
        let registry = MetricsRegistry::new();
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .tracer(tracer.clone())
            .metrics(registry.clone())
            .run_with_jobs(2);
        let events = tracer.drain();
        assert!(!events.is_empty());
        let paths: Vec<&str> = events.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"campaign"), "root span missing: {paths:?}");
        assert!(paths.contains(&"campaign/snapshot_boot"));
        assert!(paths.contains(&"cell"));
        assert!(paths.contains(&"cell/boot"));
        assert!(paths.contains(&"cell/inject"));
        assert!(paths.contains(&"cell/monitor"));
        assert!(
            paths.iter().any(|p| p.starts_with("audit/")),
            "audit events should be bridged: {paths:?}"
        );
        // The campaign folded its own counters into the registry and
        // embedded the snapshot in the report.
        let snapshot = report.metrics().expect("metrics snapshot attached");
        let cells = snapshot
            .counters
            .iter()
            .find(|c| c.name == crate::obs_bridge::M_CELLS)
            .expect("campaign.cells counter");
        assert_eq!(cells.value as usize, report.cells().len());
        let hypercalls = snapshot
            .counters
            .iter()
            .find(|c| c.name == crate::obs_bridge::M_HYPERCALLS)
            .expect("campaign.hypercalls counter");
        assert_eq!(hypercalls.value, report.total_hypercalls());
        assert!(
            snapshot.histograms.iter().any(|h| h.name == "campaign.boot_us.completed"),
            "phase histograms snapshotted"
        );
        // A second drain sees nothing: drain clears the sink.
        assert!(tracer.drain().is_empty());
    }

    #[test]
    fn restricted_campaign() {
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .versions(&[XenVersion::V4_13])
            .modes(&[Mode::Injection])
            .run();
        assert_eq!(report.cells().len(), 1);
        assert_eq!(report.cells()[0].version, XenVersion::V4_13);
    }

    /// A factory that panics for one specific `(version, injector)`
    /// combination and boots the standard world everywhere else.
    fn panicking_factory(bad: (XenVersion, bool)) -> WorldFactory {
        Arc::new(move |version, injector| {
            assert!(
                (version, injector) != bad,
                "factory panic for ({version}, injector={injector})"
            );
            standard_world(version, injector)
        })
    }

    #[test]
    fn panicking_factory_cell_is_contained() {
        for reuse in [true, false] {
            let report = Campaign::new()
                .with_use_case(Box::new(CrashCase))
                .world_factory(panicking_factory((XenVersion::V4_8, true)))
                .reuse_snapshots(reuse)
                .run();
            assert_eq!(report.cells().len(), 6, "the campaign still completes (reuse={reuse})");
            let bad = report.cell("synthetic-crash", XenVersion::V4_8, Mode::Injection).unwrap();
            assert!(bad.degraded());
            assert!(
                matches!(&bad.outcome, CellOutcome::Crashed { payload, cell }
                    if payload.contains("factory panic") && cell.version == XenVersion::V4_8),
                "got {:?}",
                bad.outcome
            );
            assert!(matches!(&bad.error, Some(CampaignError::HarnessCrash { .. })));
            // Every other cell is untouched.
            for cell in report.cells() {
                if cell.version == XenVersion::V4_8 && cell.mode == Mode::Injection {
                    continue;
                }
                assert!(!cell.degraded(), "{} {} {} degraded", cell.use_case, cell.version, cell.mode);
            }
            assert!(report.is_degraded());
            assert_eq!(report.degraded_cells().count(), 1);
        }
    }

    #[test]
    fn contained_crashes_are_deterministic_across_worker_counts() {
        let campaign = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .world_factory(panicking_factory((XenVersion::V4_6, false)));
        let serial = campaign.run_with_jobs(1).normalized().to_json().unwrap();
        let parallel = campaign.run_with_jobs(8).normalized().to_json().unwrap();
        assert_eq!(serial, parallel, "degraded cells must serialize identically at any -j");
    }

    /// A use case whose injection path sleeps past any reasonable
    /// deadline; the exploit path returns immediately.
    struct SleepyCase;

    impl UseCase for SleepyCase {
        fn name(&self) -> &'static str {
            "synthetic-sleep"
        }

        fn intrusion_model(&self) -> IntrusionModel {
            IntrusionModel::guest_hypercall_memory(
                "IM-sleep",
                AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
                &["XSA-212"],
            )
        }

        fn run_exploit(&self, _world: &mut World, _attacker: DomainId) -> ScenarioOutcome {
            ScenarioOutcome::failed("not applicable")
        }

        fn run_injection(
            &self,
            _world: &mut World,
            _attacker: DomainId,
            _injector: &dyn Injector,
        ) -> ScenarioOutcome {
            std::thread::sleep(Duration::from_millis(300));
            ScenarioOutcome::failed("finished late")
        }
    }

    #[test]
    fn deadline_overrun_is_reported_timed_out() {
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .with_use_case(Box::new(SleepyCase))
            .versions(&[XenVersion::V4_13])
            .modes(&[Mode::Injection])
            .cell_deadline(Duration::from_millis(40))
            .run();
        assert_eq!(report.cells().len(), 2, "the campaign completes past the stuck cell");
        let slow = report.cell("synthetic-sleep", XenVersion::V4_13, Mode::Injection).unwrap();
        assert!(matches!(slow.outcome, CellOutcome::TimedOut { deadline_us: 40_000 }));
        assert_eq!(slow.error, Some(CampaignError::Deadline { deadline_us: 40_000 }));
        assert!(slow.degraded());
        let fast = report.cell("synthetic-crash", XenVersion::V4_13, Mode::Injection).unwrap();
        assert!(!fast.degraded(), "cells inside the deadline are unaffected");
        assert!(report.is_degraded());
    }

    #[test]
    fn transient_boot_failures_retry_then_succeed() {
        use std::collections::BTreeMap as Map;
        // Each (version, injector) key fails transiently twice before
        // booting, so retry accounting is schedule-independent.
        let counters: Mutex<Map<(XenVersion, bool), u32>> = Mutex::new(Map::new());
        let factory: WorldFactory = Arc::new(move |version, injector| {
            let mut counters = counters.lock().unwrap();
            let failures = counters.entry((version, injector)).or_insert(0);
            if *failures < 2 {
                *failures += 1;
                return Err(guestos::BootError::transient("create dom0", "no frames left"));
            }
            drop(counters);
            standard_world(version, injector)
        });

        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .world_factory(factory.clone())
            .reuse_snapshots(false)
            .versions(&[XenVersion::V4_13])
            .modes(&[Mode::Injection])
            .retries(2)
            .run();
        let cell = report.cell("synthetic-crash", XenVersion::V4_13, Mode::Injection).unwrap();
        assert_eq!(cell.attempts, 3, "two transient failures + one success");
        assert_eq!(cell.outcome, CellOutcome::Completed);
        assert!(!cell.degraded());
        assert!(cell.erroneous_state, "the recovered cell carries real assessment data");

        // Without a retry budget the same failure degrades the cell.
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .world_factory(Arc::new(|_, _| {
                Err(guestos::BootError::transient("create dom0", "no frames left"))
            }))
            .reuse_snapshots(false)
            .versions(&[XenVersion::V4_13])
            .modes(&[Mode::Injection])
            .run();
        let cell = report.cells().first().unwrap();
        assert_eq!(cell.outcome, CellOutcome::BootFailed);
        assert!(matches!(
            &cell.error,
            Some(CampaignError::Boot { attempts: 1, message }) if message.contains("no frames left")
        ));
        assert!(cell.degraded());
    }

    /// A detector that always panics, for monitor containment tests.
    struct ExplodingDetector;

    impl crate::monitor::Detector for ExplodingDetector {
        fn name(&self) -> &'static str {
            "exploding"
        }

        fn observe(&self, _world: &World) -> Vec<SecurityViolation> {
            panic!("detector exploded")
        }
    }

    /// CrashCase with a monitor whose first detector panics.
    struct BadMonitorCase;

    impl UseCase for BadMonitorCase {
        fn name(&self) -> &'static str {
            "synthetic-bad-monitor"
        }

        fn intrusion_model(&self) -> IntrusionModel {
            CrashCase.intrusion_model()
        }

        fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
            CrashCase.run_exploit(world, attacker)
        }

        fn run_injection(
            &self,
            world: &mut World,
            attacker: DomainId,
            injector: &dyn Injector,
        ) -> ScenarioOutcome {
            CrashCase.run_injection(world, attacker, injector)
        }

        fn monitor(&self, _world: &World, _attacker: DomainId) -> crate::monitor::Monitor {
            crate::monitor::Monitor::standard().with(Box::new(ExplodingDetector))
        }
    }

    #[test]
    fn panicking_detector_degrades_but_keeps_other_observations() {
        let report = Campaign::new()
            .with_use_case(Box::new(BadMonitorCase))
            .versions(&[XenVersion::V4_6])
            .modes(&[Mode::Injection])
            .run();
        let cell = report.cells().first().unwrap();
        assert!(
            matches!(&cell.error, Some(CampaignError::Monitor { message })
                if message.contains("exploding") && message.contains("detector exploded")),
            "got {:?}",
            cell.error
        );
        assert!(cell.degraded(), "a partial observation is harness degradation");
        assert!(cell.violated(), "the surviving detectors still observed the crash");
    }

    #[test]
    fn degraded_cells_carry_forensic_flight_tails() {
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .world_factory(panicking_factory((XenVersion::V4_8, true)))
            .run_with_jobs(2);
        let bad = report.cell("synthetic-crash", XenVersion::V4_8, Mode::Injection).unwrap();
        assert!(bad.degraded());
        assert!(!bad.flight.is_empty(), "a degraded cell carries its flight tail");
        let paths: Vec<&str> = bad.flight.iter().map(|e| e.path.as_str()).collect();
        assert!(paths.contains(&"cell/start"), "{paths:?}");
        assert!(paths.contains(&"cell/degraded"), "{paths:?}");
        // Tails are re-stamped per cell: dense seq from 0, one slot.
        for (i, event) in bad.flight.iter().enumerate() {
            assert_eq!(event.seq, i as u64, "tail seq must be dense");
            assert_eq!(event.slot, bad.flight[0].slot);
        }
        for cell in report.cells() {
            if !cell.degraded() {
                assert!(cell.flight.is_empty(), "clean cells carry no tail");
            }
        }
        // Tails are forensic diagnostics, never report content.
        assert!(report.normalized().cells().iter().all(|c| c.flight.is_empty()));
    }

    #[test]
    fn flight_recorder_does_not_change_the_normalized_report() {
        let factory = panicking_factory((XenVersion::V4_6, true));
        let on = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .world_factory(factory.clone())
            .run_with_jobs(4)
            .normalized()
            .to_json()
            .unwrap();
        let off = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .world_factory(factory)
            .flight_capacity(0)
            .run_with_jobs(1)
            .normalized()
            .to_json()
            .unwrap();
        assert_eq!(on, off, "recorder on/off must not perturb normalized reports");
    }

    #[test]
    fn supervisor_samples_the_timeline() {
        let timeline = MetricsTimeline::new();
        let registry = MetricsRegistry::new();
        let report = Campaign::new()
            .with_use_case(Box::new(CrashCase))
            .timeline(timeline.clone())
            .metrics(registry.clone())
            .metrics_interval(Duration::from_millis(5))
            .run_with_jobs(2);
        // The supervisor's final tick runs after the last worker
        // finishes, so even a sub-interval run has a complete sample.
        assert!(!timeline.is_empty(), "at least the final sample lands");
        let samples = timeline.samples();
        let last = samples.last().unwrap();
        let value =
            |name: &str| last.values.iter().find(|(k, _)| k == name).map(|&(_, v)| v);
        let total = report.cells().len() as u64;
        assert_eq!(value("progress.total"), Some(total));
        assert_eq!(value("progress.done"), Some(total));
        assert_eq!(value("progress.degraded"), Some(0));
        assert!(value("workers.busy").is_some());
        assert!(value("throughput.cells_per_sec_x1000").is_some());
        // The stall counter is pre-registered as an explicit zero.
        let snapshot = report.metrics().expect("metrics snapshot attached");
        let stalled = snapshot
            .counters
            .iter()
            .find(|c| c.name == crate::obs_bridge::M_WORKER_STALLED)
            .expect("campaign.worker.stalled pre-registered");
        assert_eq!(stalled.value, 0);
    }
}
