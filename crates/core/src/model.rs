//! Intrusion models (paper §IV-B and §IV-C) and the state traces of
//! Fig. 3.
//!
//! An **intrusion model** abstracts how an erroneous state is achieved
//! when using an abusive functionality through a given interface. Its
//! instantiation fixes a *triggering source* (who), a *target component*
//! (where) and an *interaction interface* (how), plus the abusive
//! functionality itself. A single model is representative of every
//! (known and unknown) vulnerability whose exploitation leads to the same
//! erroneous state.

use crate::taxonomy::AbusiveFunctionality;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Who triggers the intrusion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TriggeringSource {
    /// A privileged user inside an unprivileged guest VM.
    UnprivilegedGuest,
    /// A privileged guest (dom0) under an untrusted-dom0 threat model.
    PrivilegedGuest,
    /// A compromised device driver.
    DeviceDriver,
    /// The management interface / toolstack.
    ManagementInterface,
}

impl fmt::Display for TriggeringSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TriggeringSource::UnprivilegedGuest => "unprivileged guest",
            TriggeringSource::PrivilegedGuest => "privileged guest (dom0)",
            TriggeringSource::DeviceDriver => "device driver",
            TriggeringSource::ManagementInterface => "management interface",
        })
    }
}

/// The virtualization-layer component the intrusion targets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TargetComponent {
    /// The memory-management component (page tables, P2M, heap).
    MemoryManagement,
    /// Interrupt/exception handling (IDT, event channels).
    InterruptHandling,
    /// Grant tables.
    GrantTables,
    /// Scheduling.
    Scheduler,
    /// Emulated devices.
    DeviceEmulation,
}

impl fmt::Display for TargetComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TargetComponent::MemoryManagement => "memory management",
            TargetComponent::InterruptHandling => "interrupt handling",
            TargetComponent::GrantTables => "grant tables",
            TargetComponent::Scheduler => "scheduler",
            TargetComponent::DeviceEmulation => "device emulation",
        })
    }
}

/// The interface the adversary interacts through.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttackInterface {
    /// A hypercall (the PV "system call").
    Hypercall,
    /// An I/O request to an emulated device.
    IoRequest,
    /// Shared memory (grant mappings, rings).
    SharedMemory,
}

impl fmt::Display for AttackInterface {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AttackInterface::Hypercall => "hypercall",
            AttackInterface::IoRequest => "I/O request",
            AttackInterface::SharedMemory => "shared memory",
        })
    }
}

/// An instantiated intrusion model.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntrusionModel {
    /// Short identifier (e.g. `"IM-write-arbitrary-memory"`).
    pub name: String,
    /// Prose description.
    pub description: String,
    /// Who triggers it.
    pub triggering_source: TriggeringSource,
    /// The component attacked.
    pub target_component: TargetComponent,
    /// The interaction interface.
    pub interface: AttackInterface,
    /// The abusive functionality the adversary acquires.
    pub abusive_functionality: AbusiveFunctionality,
    /// Advisories this model generalizes (e.g. `["XSA-148", "XSA-182"]`).
    pub related_advisories: Vec<String>,
}

impl IntrusionModel {
    /// The full instantiation used by all four of the paper's use cases:
    /// *"an unprivileged guest virtual machine that uses an hypercall to
    /// target the memory management component in the virtualization
    /// layer"* (§VI-A), parameterized by the abusive functionality.
    pub fn guest_hypercall_memory(
        name: &str,
        functionality: AbusiveFunctionality,
        advisories: &[&str],
    ) -> Self {
        Self {
            name: name.to_owned(),
            description: format!(
                "unprivileged guest VM uses a hypercall to target the memory \
                 management component, acquiring: {functionality}"
            ),
            triggering_source: TriggeringSource::UnprivilegedGuest,
            target_component: TargetComponent::MemoryManagement,
            interface: AttackInterface::Hypercall,
            abusive_functionality: functionality,
            related_advisories: advisories.iter().map(|s| (*s).to_owned()).collect(),
        }
    }
}

impl fmt::Display for IntrusionModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} -> {} via {} [{}]",
            self.name,
            self.triggering_source,
            self.target_component,
            self.interface,
            self.abusive_functionality
        )
    }
}

/// A state-machine trace: Fig. 3's two equivalent views of an intrusion.
///
/// The *internal* view walks every intermediate state the system passes
/// through while the exploit runs; the *abstracted* view collapses the
/// whole path into one **abusive functionality** transition from the
/// initial state to the erroneous state.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StateTrace {
    states: Vec<String>,
    transitions: Vec<(usize, String, usize)>,
}

impl StateTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a state, returning its index.
    pub fn state(&mut self, label: impl Into<String>) -> usize {
        self.states.push(label.into());
        self.states.len() - 1
    }

    /// Adds a labelled transition between two states.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn transition(&mut self, from: usize, label: impl Into<String>, to: usize) {
        assert!(from < self.states.len() && to < self.states.len());
        self.transitions.push((from, label.into(), to));
    }

    /// The states.
    pub fn states(&self) -> &[String] {
        &self.states
    }

    /// The transitions as `(from, label, to)` index triples.
    pub fn transitions(&self) -> &[(usize, String, usize)] {
        &self.transitions
    }

    /// Collapses the trace into the abstracted (attacker's) view: initial
    /// state --[abusive functionality]--> erroneous state.
    pub fn abstracted(&self, functionality: AbusiveFunctionality) -> StateTrace {
        let mut t = StateTrace::new();
        let s0 = t.state(self.states.first().cloned().unwrap_or_else(|| "initial".into()));
        let s1 = t.state(
            self.states
                .last()
                .cloned()
                .unwrap_or_else(|| "erroneous state".into()),
        );
        t.transition(s0, format!("abusive functionality: {functionality}"), s1);
        t
    }

    /// Renders the trace as indented text (used by the Fig. 3
    /// regenerator).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (from, label, to) in &self.transitions {
            out.push_str(&format!(
                "  ({}) --[{}]--> ({})\n",
                self.states[*from], label, self.states[*to]
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_instantiation() {
        let im = IntrusionModel::guest_hypercall_memory(
            "IM-write-pte",
            AbusiveFunctionality::GuestWritablePageTableEntry,
            &["XSA-148", "XSA-182"],
        );
        assert_eq!(im.triggering_source, TriggeringSource::UnprivilegedGuest);
        assert_eq!(im.target_component, TargetComponent::MemoryManagement);
        assert_eq!(im.interface, AttackInterface::Hypercall);
        assert_eq!(im.related_advisories, vec!["XSA-148", "XSA-182"]);
        let s = im.to_string();
        assert!(s.contains("unprivileged guest"));
        assert!(s.contains("hypercall"));
    }

    #[test]
    fn trace_and_abstraction() {
        let mut t = StateTrace::new();
        let s1 = t.state("state 1 (initial)");
        let s2 = t.state("state 2");
        let s3 = t.state("erroneous state");
        t.transition(s1, "instruction set a", s2);
        t.transition(s2, "vulnerability activation", s3);
        assert_eq!(t.states().len(), 3);
        assert_eq!(t.transitions().len(), 2);

        let a = t.abstracted(AbusiveFunctionality::WriteUnauthorizedArbitraryMemory);
        assert_eq!(a.states().len(), 2);
        assert_eq!(a.transitions().len(), 1);
        assert!(a.render().contains("abusive functionality"));
        assert!(a.render().contains("state 1 (initial)"));
    }

    #[test]
    #[should_panic]
    fn bad_transition_index_panics() {
        let mut t = StateTrace::new();
        let s = t.state("only");
        t.transition(s, "bad", 7);
    }

    #[test]
    fn display_impls() {
        assert_eq!(TriggeringSource::UnprivilegedGuest.to_string(), "unprivileged guest");
        assert_eq!(TargetComponent::GrantTables.to_string(), "grant tables");
        assert_eq!(AttackInterface::Hypercall.to_string(), "hypercall");
    }
}
