//! **Intrusion injection for virtualized systems** — a full reproduction
//! of the DSN 2023 paper *"Intrusion Injection for Virtualized Systems:
//! Concepts and Approach"* (Gonçalves, Antunes, Vieira).
//!
//! # The idea
//!
//! Fault injection validates fault tolerance by injecting *errors* (the
//! effects of faults) instead of root faults. Intrusion injection applies
//! the same move to security: instead of attacking a hypervisor through a
//! real exploit chain, **inject the erroneous state a successful
//! intrusion would leave behind**, then observe whether the system
//! suffers a security violation or handles the state. This decouples
//! security assessment from the availability of working exploits and
//! covers (potentially unknown) vulnerabilities that lead to the same
//! states.
//!
//! # What this crate provides
//!
//! * [`avi`] — the chain-of-dependability-threats / extended-AVI model
//!   vocabulary (attack → vulnerability → intrusion → erroneous state →
//!   security violation), Fig. 1 of the paper,
//! * [`taxonomy`] — the **abusive functionality** taxonomy of Table I
//!   (15 functionalities in 4 classes over 100 Xen CVEs),
//! * [`model`] — **intrusion models**: triggering source, target
//!   component, attack interface, abusive functionality (§IV-B/C), plus
//!   the internal-vs-abstracted state traces of Fig. 3,
//! * [`erroneous_state`] — machine-checkable erroneous-state
//!   specifications with audits (the paper's page-table-walk audits),
//! * [`injector`] — the [`Injector`] trait and the
//!   [`ArbitraryAccessInjector`] driving the prototype's
//!   `arbitrary_access()` hypercall,
//! * [`monitor`] — security-violation detectors (crash, privilege
//!   escalation, reverse shell, guest-writable page tables,
//!   cross-domain access),
//! * [`scenario`] — the [`UseCase`] abstraction tying an intrusion model
//!   to an exploit path and an injection path,
//! * [`campaign`] — the assessment campaign runner and report generator
//!   reproducing Tables II/III and Figs. 2/4,
//! * [`randomized`] — fuzz-style randomized injection within an
//!   intrusion model's constraints (§IV-C's "randomize inputs to an
//!   injector"),
//! * [`report`] — plain-text table rendering shared by the regenerators.
//!
//! # Quickstart
//!
//! ```
//! use guestos::WorldBuilder;
//! use hvsim::XenVersion;
//! use intrusion_core::{ArbitraryAccessInjector, ErroneousStateSpec, Injector};
//! use hvsim::AccessMode;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut world = WorldBuilder::new(XenVersion::V4_13)
//!     .injector(true)
//!     .guest("guest03", 64)
//!     .build()?;
//! let attacker = world.domain_by_name("guest03").unwrap();
//!
//! // Inject the XSA-212-crash erroneous state: corrupt the #PF gate.
//! let gate = world.hv().sidt(0).offset(14 * 16);
//! let spec = ErroneousStateSpec::OverwriteIdtGate {
//!     cpu: 0,
//!     vector: 14,
//!     value: 0x4141_4141_4141_4141,
//! };
//! let evidence = ArbitraryAccessInjector.inject(&mut world, attacker, &spec)?;
//! assert!(evidence.audit.present);
//! # let _ = gate; let _ = AccessMode::LinearRead;
//! # Ok(())
//! # }
//! ```

// The campaign engine must be fail-soft: library paths return the
// typed taxonomy in [`error`] instead of panicking. Tests keep their
// unwraps; the few deliberate exceptions are annotated in place.
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod avi;
pub mod benchmark;
pub mod campaign;
pub mod chaos;
pub mod checkpoint;
pub mod erroneous_state;
pub mod error;
pub mod injector;
pub mod model;
pub mod monitor;
pub mod obs_bridge;
pub mod randomized;
pub mod report;
pub mod scenario;
pub mod stream;
pub mod taxonomy;
mod telemetry;

pub use avi::{ThreatChain, ThreatLink, ThreatStage};
pub use benchmark::{SecurityAttribute, SecurityBenchmark, VersionScore};
pub use campaign::{
    default_jobs, standard_world_factory, Campaign, CampaignConfig, CampaignReport,
    CampaignThroughput, CellResult, LatencyBreakdown, PhaseLatency, PhaseTimings, WorldFactory,
};
pub use chaos::{ChaosConfig, ChaosPolicy};
pub use checkpoint::{read_header, FileSink, JournalHeader, JournalSink};
pub use error::{panic_payload, CampaignError, CellId, CellOutcome, CheckpointError};
pub use erroneous_state::{ErroneousStateSpec, StateAudit};
pub use injector::{ArbitraryAccessInjector, DebugStubInjector, InjectError, InjectionEvidence, Injector};
pub use model::{AttackInterface, IntrusionModel, StateTrace, TargetComponent, TriggeringSource};
pub use monitor::{Detector, Monitor, Observation, SecurityViolation};
pub use randomized::{RandomizedCampaign, RandomizedOutcome, RandomizedSummary, TargetRegion};
pub use report::{canonical_hypercall_total, TextTable};
pub use scenario::{Mode, ScenarioOutcome, UseCase};
pub use stream::{
    CellSpec, DegradedSlot, GridFingerprint, KeySummary, MergeError, Shard, ShardError, SpecGrid,
    StreamBench, StreamOutcome, StreamReport, StreamRunStats,
};
pub use taxonomy::{AbusiveFunctionality, FunctionalityClass};
