//! The abusive-functionality taxonomy (paper Table I).
//!
//! An **abusive functionality** is "an unintended functionality the
//! system was built with" that an adversary discloses by exploiting a
//! vulnerability — the externally visible capability an intrusion grants.
//! The paper's preliminary study classifies 100 randomly selected Xen
//! CVEs into 15 functionalities across 4 classes; some CVEs carry more
//! than one functionality, so the 100 CVEs yield 108 tags.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The four classes Table I groups abusive functionalities into.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum FunctionalityClass {
    /// Direct unauthorized reads/writes of memory.
    MemoryAccess,
    /// Corruption of the memory-management machinery itself.
    MemoryManagement,
    /// Triggering exception mechanisms (hardware or software asserts).
    ExceptionalConditions,
    /// Effects outside the memory subsystem (hangs, interrupts).
    NonMemoryRelated,
}

impl FunctionalityClass {
    /// All classes in Table I order.
    pub const ALL: [FunctionalityClass; 4] = [
        FunctionalityClass::MemoryAccess,
        FunctionalityClass::MemoryManagement,
        FunctionalityClass::ExceptionalConditions,
        FunctionalityClass::NonMemoryRelated,
    ];

    /// The paper's per-class CVE count (Table I section headers).
    pub fn paper_cve_count(self) -> usize {
        match self {
            FunctionalityClass::MemoryAccess => 35,
            FunctionalityClass::MemoryManagement => 40,
            FunctionalityClass::ExceptionalConditions => 11,
            FunctionalityClass::NonMemoryRelated => 22,
        }
    }

    /// The label as printed in Table I.
    pub fn label(self) -> &'static str {
        match self {
            FunctionalityClass::MemoryAccess => "Memory Access",
            FunctionalityClass::MemoryManagement => "Memory Management",
            FunctionalityClass::ExceptionalConditions => "Exceptional Conditions",
            FunctionalityClass::NonMemoryRelated => "Non-Memory Related",
        }
    }
}

impl fmt::Display for FunctionalityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The 15 abusive functionalities of Table I.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[non_exhaustive]
pub enum AbusiveFunctionality {
    /// Read memory the caller is not authorized for.
    ReadUnauthorizedMemory,
    /// Write memory the caller is not authorized for (fixed location).
    WriteUnauthorizedMemory,
    /// Write *arbitrary* unauthorized memory (write-what-where, CWE-123).
    WriteUnauthorizedArbitraryMemory,
    /// Both read and write unauthorized memory.
    ReadWriteUnauthorizedMemory,
    /// Cause a legitimate memory access to fail.
    FailMemoryAccess,
    /// Corrupt a virtual memory mapping.
    CorruptVirtualMemoryMapping,
    /// Corrupt a page reference (counts/ownership).
    CorruptPageReference,
    /// Reduce the availability of page mappings.
    DecreasePageMappingAvailability,
    /// Obtain a guest-writable page-table entry (XSA-148/182's family).
    GuestWritablePageTableEntry,
    /// Cause a memory mapping operation to fail.
    FailMemoryMapping,
    /// Allocate memory without control/limits.
    UncontrolledMemoryAllocation,
    /// Keep access to a page after releasing it (XSA-387/393's family).
    KeepPageAccess,
    /// Trigger a fatal software exception (panic/BUG/assert).
    InduceFatalException,
    /// Trigger a hardware memory exception.
    InduceMemoryException,
    /// Hang a CPU or the whole system.
    InduceHangState,
    /// Raise arbitrary uncontrolled interrupt requests.
    UncontrolledArbitraryInterrupts,
}

impl AbusiveFunctionality {
    /// All functionalities in Table I order.
    pub const ALL: [AbusiveFunctionality; 16] = [
        AbusiveFunctionality::ReadUnauthorizedMemory,
        AbusiveFunctionality::WriteUnauthorizedMemory,
        AbusiveFunctionality::WriteUnauthorizedArbitraryMemory,
        AbusiveFunctionality::ReadWriteUnauthorizedMemory,
        AbusiveFunctionality::FailMemoryAccess,
        AbusiveFunctionality::CorruptVirtualMemoryMapping,
        AbusiveFunctionality::CorruptPageReference,
        AbusiveFunctionality::DecreasePageMappingAvailability,
        AbusiveFunctionality::GuestWritablePageTableEntry,
        AbusiveFunctionality::FailMemoryMapping,
        AbusiveFunctionality::UncontrolledMemoryAllocation,
        AbusiveFunctionality::KeepPageAccess,
        AbusiveFunctionality::InduceFatalException,
        AbusiveFunctionality::InduceMemoryException,
        AbusiveFunctionality::InduceHangState,
        AbusiveFunctionality::UncontrolledArbitraryInterrupts,
    ];

    /// The class this functionality belongs to.
    pub fn class(self) -> FunctionalityClass {
        use AbusiveFunctionality::*;
        match self {
            ReadUnauthorizedMemory | WriteUnauthorizedMemory | WriteUnauthorizedArbitraryMemory
            | ReadWriteUnauthorizedMemory | FailMemoryAccess => FunctionalityClass::MemoryAccess,
            CorruptVirtualMemoryMapping | CorruptPageReference
            | DecreasePageMappingAvailability | GuestWritablePageTableEntry
            | FailMemoryMapping | UncontrolledMemoryAllocation | KeepPageAccess => {
                FunctionalityClass::MemoryManagement
            }
            InduceFatalException | InduceMemoryException => {
                FunctionalityClass::ExceptionalConditions
            }
            InduceHangState | UncontrolledArbitraryInterrupts => {
                FunctionalityClass::NonMemoryRelated
            }
        }
    }

    /// The label as printed in Table I.
    pub fn label(self) -> &'static str {
        use AbusiveFunctionality::*;
        match self {
            ReadUnauthorizedMemory => "Read Unauthorized Memory",
            WriteUnauthorizedMemory => "Write Unauthorized Memory",
            WriteUnauthorizedArbitraryMemory => "Write Unauthorized Arbitrary Memory",
            ReadWriteUnauthorizedMemory => "R/W Unauthorized Memory",
            FailMemoryAccess => "Fail a Memory Access",
            CorruptVirtualMemoryMapping => "Corrupt Virtual Memory Mapping",
            CorruptPageReference => "Corrupt a Page Reference",
            DecreasePageMappingAvailability => "Decrease Page Mapping Availability",
            GuestWritablePageTableEntry => "Guest-Writable Page Table Entry",
            FailMemoryMapping => "Fail a memory mapping",
            UncontrolledMemoryAllocation => "Uncontrolled Memory Allocation",
            KeepPageAccess => "Keep Page Access",
            InduceFatalException => "Induce a Fatal Exception",
            InduceMemoryException => "Induce a Memory Exception",
            InduceHangState => "Induce a Hang State",
            UncontrolledArbitraryInterrupts => "Uncontrolled Arbitrary Interrupts Requests",
        }
    }

    /// The tag count the paper reports in Table I.
    pub fn paper_count(self) -> usize {
        use AbusiveFunctionality::*;
        match self {
            ReadUnauthorizedMemory => 10,
            WriteUnauthorizedMemory => 9,
            WriteUnauthorizedArbitraryMemory => 4,
            ReadWriteUnauthorizedMemory => 7,
            FailMemoryAccess => 5,
            CorruptVirtualMemoryMapping => 4,
            CorruptPageReference => 4,
            DecreasePageMappingAvailability => 7,
            GuestWritablePageTableEntry => 6,
            FailMemoryMapping => 2,
            UncontrolledMemoryAllocation => 6,
            KeepPageAccess => 11,
            InduceFatalException => 6,
            InduceMemoryException => 5,
            InduceHangState => 20,
            UncontrolledArbitraryInterrupts => 2,
        }
    }
}

impl fmt::Display for AbusiveFunctionality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_class_counts_sum_to_paper_headers() {
        for class in FunctionalityClass::ALL {
            let sum: usize = AbusiveFunctionality::ALL
                .iter()
                .filter(|f| f.class() == class)
                .map(|f| f.paper_count())
                .sum();
            assert_eq!(sum, class.paper_cve_count(), "class {class}");
        }
    }

    #[test]
    fn total_tags_is_108() {
        let total: usize = AbusiveFunctionality::ALL.iter().map(|f| f.paper_count()).sum();
        assert_eq!(total, 108, "100 CVEs, 8 with two functionalities");
    }

    #[test]
    fn class_header_counts_match_paper() {
        assert_eq!(FunctionalityClass::MemoryAccess.paper_cve_count(), 35);
        assert_eq!(FunctionalityClass::MemoryManagement.paper_cve_count(), 40);
        assert_eq!(FunctionalityClass::ExceptionalConditions.paper_cve_count(), 11);
        assert_eq!(FunctionalityClass::NonMemoryRelated.paper_cve_count(), 22);
    }

    #[test]
    fn labels_match_table_one() {
        assert_eq!(
            AbusiveFunctionality::GuestWritablePageTableEntry.label(),
            "Guest-Writable Page Table Entry"
        );
        assert_eq!(AbusiveFunctionality::KeepPageAccess.label(), "Keep Page Access");
        assert_eq!(FunctionalityClass::NonMemoryRelated.label(), "Non-Memory Related");
    }

    #[test]
    fn all_is_exhaustive_and_unique() {
        let mut set = std::collections::BTreeSet::new();
        for f in AbusiveFunctionality::ALL {
            assert!(set.insert(f), "duplicate {f:?}");
        }
        assert_eq!(set.len(), 16);
    }
}
