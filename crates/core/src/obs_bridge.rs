//! Adapters between the simulator's existing evidence streams and the
//! `hvsim-obs` layer.
//!
//! The hypervisor's [`AuditLog`](hvsim::AuditLog) and the guest's boot
//! trace are recorded *inside the world* regardless of observability
//! settings; this module is the single place where those records are
//! re-emitted as trace events, so neither `hvsim` nor `guestos` grows a
//! dependency on the obs crate and no event is ever counted twice.

use crate::campaign::{CampaignReport, CellResult};
use crate::stream::{StreamReport, StreamRunStats};
use guestos::BootStage;
use hvsim::AuditEvent;
use hvsim_obs::{FlightHandle, Histogram, MetricsRegistry, TraceCtx};

/// Counter: cells the campaign scheduled.
pub const M_CELLS: &str = "campaign.cells";
/// Counter: cells that completed cleanly.
pub const M_CELLS_COMPLETED: &str = "campaign.cells_completed";
/// Counter: cells on which the harness degraded.
pub const M_CELLS_DEGRADED: &str = "campaign.cells_degraded";
/// Counter: extra boot attempts consumed by transient-failure retries.
pub const M_RETRIES: &str = "campaign.retries";
/// Counter: cells abandoned at the per-cell deadline.
pub const M_TIMEOUTS: &str = "campaign.timeouts";
/// Counter: cells whose world never booted.
pub const M_BOOT_FAILURES: &str = "campaign.boot_failures";
/// Counter: cells where a panic escaped the cell body.
pub const M_CRASHES: &str = "campaign.crashes";
/// Counter: hypercalls executed across all cells. Derived from the
/// canonical per-cell sum — see
/// [`canonical_hypercall_total`](crate::report::canonical_hypercall_total)
/// for which count is authoritative.
pub const M_HYPERCALLS: &str = "campaign.hypercalls";
/// Counter: frames privatized by copy-on-write across all cell worlds.
pub const M_FRAMES_COPIED: &str = "mem.frames_copied";
/// Counter: COW chunk-directory privatizations across all cell worlds.
/// Recorded on every run — a quiet run reads an explicit 0 (same
/// convention as `campaign.chaos.*`), so dashboards can distinguish
/// "nothing privatized" from "counter missing".
pub const M_CHUNKS_PRIVATIZED: &str = "mem.chunks_privatized";
/// Counter: software-TLB hits across all cell worlds.
pub const M_TLB_HITS: &str = "tlb.hits";
/// Counter: software-TLB misses across all cell worlds.
pub const M_TLB_MISSES: &str = "tlb.misses";
/// Counter: software-TLB fills that evicted a live entry from a full
/// set. Recorded on every run — a quiet run reads an explicit 0 (same
/// convention as `campaign.chaos.*`).
pub const M_TLB_FILL_CONFLICTS: &str = "tlb.fill_conflicts";
/// Counter (streaming only): time the spec generator spent blocked on
/// a full work queue, µs.
pub const M_QUEUE_STALL_US: &str = "campaign.stream.queue_stall_us";
/// Counter (streaming only): time workers spent blocked on an empty
/// work queue, µs.
pub const M_WORKER_STALL_US: &str = "campaign.stream.worker_stall_us";
/// Counter (streaming only): time spent merging per-worker partial
/// reports, µs.
pub const M_MERGE_US: &str = "campaign.stream.merge_us";
/// Counter (streaming only): peak cells resident in the pipeline.
pub const M_PEAK_RESIDENT: &str = "campaign.stream.peak_resident_cells";
/// Counter (streaming only): cold-miss wait on the shared base-world
/// map, µs.
pub const M_BASE_WORLD_WAIT_US: &str = "campaign.stream.base_world_wait_us";
/// Counter: total backoff slept between transient boot retries, µs.
pub const M_RETRY_BACKOFF_US: &str = "boot.retry_backoff_us";
/// Counter (checkpointing only): slot records journaled.
pub const M_CKPT_SLOTS: &str = "campaign.checkpoint.slots";
/// Counter (checkpointing only): durable fold records journaled.
pub const M_CKPT_FOLDS: &str = "campaign.checkpoint.folds";
/// Counter (checkpointing only): fsyncs issued on the journal.
pub const M_CKPT_SYNCS: &str = "campaign.checkpoint.syncs";
/// Counter (checkpointing only): bytes appended to the journal.
pub const M_CKPT_BYTES: &str = "campaign.checkpoint.bytes";
/// Counter (checkpointing only): journal write errors (fail-soft — the
/// run continues unjournaled after the first).
pub const M_CKPT_WRITE_ERRORS: &str = "campaign.checkpoint.write_errors";
/// Counter (resume only): slots skipped because a durable fold record
/// already covered them.
pub const M_CKPT_RESUMED_SLOTS: &str = "campaign.checkpoint.resumed_slots";
/// Counter (chaos only): worker panics injected.
pub const M_CHAOS_PANICS: &str = "campaign.chaos.worker_panics";
/// Counter (chaos only): transient boot failures injected.
pub const M_CHAOS_BOOTS: &str = "campaign.chaos.transient_boots";
/// Counter (chaos only): cell slowdowns injected.
pub const M_CHAOS_SLOWDOWNS: &str = "campaign.chaos.slowdowns";
/// Counter (chaos only): queue stalls injected.
pub const M_CHAOS_STALLS: &str = "campaign.chaos.queue_stalls";
/// Counter (chaos only): journal records torn mid-write.
pub const M_CHAOS_TORN: &str = "campaign.chaos.torn_writes";
/// Counter: stall episodes the supervisor flagged — a busy worker
/// whose heartbeat age exceeded the stall threshold. Wall-clock
/// shaped, so it lives outside determinism diffs like the
/// `campaign.stream.*` family. Pre-registered at 0 whenever the
/// supervisor runs, so "no stalls" is an explicit value.
pub const M_WORKER_STALLED: &str = "campaign.worker.stalled";

/// Re-emits hypervisor audit events as trace points under
/// `audit/<kind>`, one per event, with the human-readable rendering in
/// the `detail` attribute. Callers pass the slice *after* their
/// baseline index so world-boot events are not re-attributed to the
/// cell that merely cloned the world.
pub fn bridge_audit(ctx: &TraceCtx, events: &[AuditEvent]) {
    if !ctx.is_enabled() {
        return;
    }
    for event in events {
        ctx.point(&format!("audit/{}", event.kind()), 0, || {
            vec![("detail".to_owned(), event.to_string())]
        });
    }
}

/// Records hypervisor audit events into a worker's flight ring under
/// `audit/<kind>`, mirroring [`bridge_audit`]'s trace emission — the
/// recorder is always on, so a degraded cell's forensic tail carries
/// the hypercall/audit activity even when tracing is off.
///
/// Called only on a cell's *degradation* paths: a clean cell's audit
/// events can never appear in another cell's tail (tails filter by
/// slot), and a wedged cell hasn't reached its bridge point yet, so
/// skipping them changes no dump while keeping one audit-heavy cell
/// from paying per-hypercall recording cost on the clean hot path.
pub(crate) fn bridge_audit_flight(flight: &FlightHandle, slot: u64, events: &[AuditEvent]) {
    use std::fmt::Write as _;
    flight.with_recorder(|recorder| {
        for event in events {
            recorder.record_parts(slot, 0, |path, detail| {
                path.push_str("audit/");
                path.push_str(event.kind());
                let _ = write!(detail, "{event}");
            });
        }
    });
}

/// Re-emits the guest boot trace as points under `<parent>/<stage>`,
/// carrying each stage's externally measured duration in `wall_us`.
pub fn bridge_boot_stages(ctx: &TraceCtx, parent: &str, stages: &[BootStage]) {
    if !ctx.is_enabled() {
        return;
    }
    for stage in stages {
        ctx.point(&format!("{parent}/{}", stage.stage), stage.wall_us, Vec::new);
    }
}

fn phase_histograms(
    registry: &MetricsRegistry,
    name: &str,
    cells: &[&CellResult],
    value: impl Fn(&CellResult) -> Option<u64>,
) {
    for cell in cells {
        if let Some(v) = value(cell) {
            registry.observe(name, v);
        }
    }
}

/// Folds a finished report into the registry: the `campaign.*` counters
/// plus per-phase latency histograms split by completed vs degraded.
/// Called once at collection time (deterministic — no worker-thread
/// interleaving can reorder counter updates).
pub fn record_report_metrics(report: &CampaignReport, registry: &MetricsRegistry) {
    let cells = report.cells();
    registry.add(M_CELLS, cells.len() as u64);
    registry.add(M_CELLS_COMPLETED, report.completed_cells().count() as u64);
    registry.add(M_CELLS_DEGRADED, report.degraded_cells().count() as u64);
    registry.add(M_RETRIES, cells.iter().map(|c| u64::from(c.attempts.saturating_sub(1))).sum());
    registry.add(
        M_TIMEOUTS,
        cells
            .iter()
            .filter(|c| matches!(c.outcome, crate::error::CellOutcome::TimedOut { .. }))
            .count() as u64,
    );
    registry.add(
        M_BOOT_FAILURES,
        cells
            .iter()
            .filter(|c| matches!(c.outcome, crate::error::CellOutcome::BootFailed))
            .count() as u64,
    );
    registry.add(
        M_CRASHES,
        cells
            .iter()
            .filter(|c| matches!(c.outcome, crate::error::CellOutcome::Crashed { .. }))
            .count() as u64,
    );
    registry.add(M_HYPERCALLS, crate::report::canonical_hypercall_total(report));
    registry.add(M_FRAMES_COPIED, cells.iter().map(|c| c.snapshot.frames_copied).sum());
    registry.add(M_CHUNKS_PRIVATIZED, cells.iter().map(|c| c.snapshot.chunks_privatized).sum());
    registry.add(M_TLB_HITS, cells.iter().map(|c| c.tlb.hits).sum());
    registry.add(M_TLB_MISSES, cells.iter().map(|c| c.tlb.misses).sum());
    registry.add(M_TLB_FILL_CONFLICTS, cells.iter().map(|c| c.tlb.fill_conflicts).sum());
    let completed: Vec<&CellResult> = report.completed_cells().collect();
    let degraded: Vec<&CellResult> = report.degraded_cells().collect();
    for (suffix, group) in [("completed", &completed), ("degraded", &degraded)] {
        phase_histograms(registry, &format!("campaign.boot_us.{suffix}"), group, |c| {
            c.phase_us.boot_us
        });
        phase_histograms(registry, &format!("campaign.inject_us.{suffix}"), group, |c| {
            c.phase_us.inject_us
        });
        phase_histograms(registry, &format!("campaign.monitor_us.{suffix}"), group, |c| {
            c.phase_us.monitor_us
        });
    }
}

/// Folds a streaming run into the registry: the same `campaign.*`
/// counters the classic path records (from the already-merged report,
/// so updates are deterministic), full-resolution per-phase histograms
/// via exact merges, and the streaming-only pipeline counters. The
/// `campaign.stream.*` values are wall-clock shaped and never part of
/// determinism diffs.
pub(crate) fn record_stream_metrics(
    report: &StreamReport,
    phases: &crate::stream::PhaseHistograms,
    stats: &StreamRunStats,
    registry: &MetricsRegistry,
) {
    registry.add(M_CELLS, report.cells);
    registry.add(M_CELLS_COMPLETED, report.completed);
    registry.add(M_CELLS_DEGRADED, report.degraded);
    registry.add(M_RETRIES, report.retries);
    registry.add(M_TIMEOUTS, report.timed_out);
    registry.add(M_BOOT_FAILURES, report.boot_failed);
    registry.add(M_CRASHES, report.crashed);
    registry.add(M_HYPERCALLS, report.hypercalls);
    registry.add(M_FRAMES_COPIED, report.frames_copied);
    registry.add(M_CHUNKS_PRIVATIZED, report.chunks_privatized);
    registry.add(M_TLB_HITS, report.tlb_hits);
    registry.add(M_TLB_MISSES, report.tlb_misses);
    registry.add(M_TLB_FILL_CONFLICTS, report.tlb_fill_conflicts);
    for (name, histogram) in phases.named() {
        registry.observe_histogram(name, histogram);
    }
    registry.add(M_QUEUE_STALL_US, stats.queue_stall_us);
    registry.add(M_WORKER_STALL_US, stats.worker_stall_us);
    registry.add(M_MERGE_US, stats.merge_us);
    registry.add(M_PEAK_RESIDENT, stats.peak_resident_cells);
    registry.add(M_BASE_WORLD_WAIT_US, stats.base_world_wait_us);
}

/// Folds a finished checkpoint session into the registry. Counter
/// values are wall-clock-free but schedule-*shaped* (batch boundaries
/// move with worker interleaving), so they live outside determinism
/// diffs like the `campaign.stream.*` family.
pub(crate) fn record_checkpoint_metrics(
    counters: &crate::checkpoint::CheckpointCounters,
    resumed_slots: u64,
    registry: &MetricsRegistry,
) {
    registry.add(M_CKPT_SLOTS, counters.slots);
    registry.add(M_CKPT_FOLDS, counters.folds);
    registry.add(M_CKPT_SYNCS, counters.syncs);
    registry.add(M_CKPT_BYTES, counters.bytes);
    registry.add(M_CKPT_WRITE_ERRORS, counters.write_errors);
    registry.add(M_CKPT_RESUMED_SLOTS, resumed_slots);
}

/// Folds a finished run's chaos-fault tallies into the registry.
///
/// Called whenever chaos is *configured*, even when the policy is
/// no-op (`None`) or simply fired nothing: the `campaign.chaos.*`
/// counters then read an explicit 0, so a dashboard can distinguish
/// "chaos off" (counters absent) from "chaos quiet" (counters zero).
pub(crate) fn record_chaos_metrics(
    policy: Option<&crate::chaos::ChaosPolicy>,
    registry: &MetricsRegistry,
) {
    let (panics, boots, slowdowns, stalls, torn) =
        policy.map_or((0, 0, 0, 0, 0), crate::chaos::ChaosPolicy::fired);
    registry.add(M_CHAOS_PANICS, panics);
    registry.add(M_CHAOS_BOOTS, boots);
    registry.add(M_CHAOS_SLOWDOWNS, slowdowns);
    registry.add(M_CHAOS_STALLS, stalls);
    registry.add(M_CHAOS_TORN, torn);
}

/// Builds one phase histogram summary directly from report cells — the
/// path `CampaignThroughput` uses for `BENCH_campaign.json`.
pub fn phase_summary<'a>(
    cells: impl Iterator<Item = &'a CellResult>,
    value: impl Fn(&CellResult) -> Option<u64>,
) -> hvsim_obs::HistogramSummary {
    let mut histogram = Histogram::new();
    for cell in cells {
        if let Some(v) = value(cell) {
            histogram.record(v);
        }
    }
    histogram.summary()
}
