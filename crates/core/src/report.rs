//! Plain-text table rendering for the table/figure regenerators, and the
//! canonical definitions of report-level aggregates.

use crate::campaign::CampaignReport;
use std::fmt;

/// The canonical campaign-wide hypercall total: the sum of the per-cell
/// `hypercalls` field (each cell counts its own world's hypercalls above
/// its boot baseline).
///
/// The same number is published two ways — this per-cell sum in the
/// report, and the `campaign.hypercalls` registry counter
/// ([`M_HYPERCALLS`](crate::obs_bridge::M_HYPERCALLS)) when metrics are
/// attached. The report field is **authoritative**: it exists whether or
/// not a registry is attached, and the counter is derived from it at
/// collection time (`record_report_metrics` calls this function), so the
/// two can never legitimately disagree. The
/// `hypercall_counter_matches_canonical_per_cell_sum` test pins that
/// equality down.
pub fn canonical_hypercall_total(report: &CampaignReport) -> u64 {
    report.total_hypercalls()
}

/// A simple monospace table with a header row.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    title: Option<String>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            title: None,
        }
    }

    /// Sets a title printed above the table.
    #[must_use]
    pub fn title(mut self, title: impl Into<String>) -> Self {
        self.title = Some(title.into());
        self
    }

    /// Appends a row. Short rows are padded with empty cells.
    ///
    /// # Panics
    ///
    /// Panics if the row has more cells than the header.
    pub fn row<S: Into<String>>(&mut self, cells: impl IntoIterator<Item = S>) -> &mut Self {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(
            row.len() <= self.header.len(),
            "row has {} cells, header has {}",
            row.len(),
            self.header.len()
        );
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Appends a full-width separator row.
    pub fn separator(&mut self) -> &mut Self {
        self.rows.push(Vec::new());
        self
    }

    /// Number of data rows (separators included).
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.chars().count());
            }
        }
        w
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let widths = self.widths();
        let total: usize = widths.iter().sum::<usize>() + 3 * widths.len() + 1;
        if let Some(t) = &self.title {
            writeln!(f, "{t}")?;
        }
        let line = "-".repeat(total);
        writeln!(f, "{line}")?;
        write!(f, "|")?;
        for (h, w) in self.header.iter().zip(&widths) {
            write!(f, " {h:<w$} |")?;
        }
        writeln!(f)?;
        writeln!(f, "{line}")?;
        for row in &self.rows {
            if row.is_empty() {
                writeln!(f, "{line}")?;
                continue;
            }
            write!(f, "|")?;
            for (c, w) in row.iter().zip(&widths) {
                write!(f, " {c:<w$} |")?;
            }
            writeln!(f)?;
        }
        writeln!(f, "{line}")?;
        Ok(())
    }
}

/// The check mark used in Table III for a correctly induced property.
pub const CHECK: &str = "\u{2713}";
/// The shield used in Table III for a handled erroneous state.
pub const SHIELD: &str = "\u{1F6E1}";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(["Use Case", "Err. State", "Sec. Viol."]).title("TABLE");
        t.row(["XSA-212-crash", CHECK, CHECK]);
        t.row(["XSA-182-test", CHECK, SHIELD]);
        let s = t.to_string();
        assert!(s.starts_with("TABLE\n"));
        assert!(s.contains("| XSA-212-crash |"));
        assert!(s.contains(CHECK));
        assert_eq!(t.row_count(), 2);
    }

    #[test]
    fn pads_short_rows() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only"]);
        let s = t.to_string();
        assert!(s.contains("| only |"));
    }

    #[test]
    #[should_panic(expected = "cells")]
    fn rejects_long_rows() {
        let mut t = TextTable::new(["a"]);
        t.row(["1", "2"]);
    }

    #[test]
    fn separator_renders_line() {
        let mut t = TextTable::new(["a"]);
        t.row(["x"]);
        t.separator();
        t.row(["y"]);
        let s = t.to_string();
        let dashes = s.lines().filter(|l| l.starts_with('-')).count();
        assert_eq!(dashes, 4, "top, under-header, separator, bottom");
    }
}
