//! Interrupt and management-interface intrusion models — the paper's
//! stated prototype expansion ("IMs related with malicious interrupts
//! and activities originating from the management interface", §IX-C).
//!
//! [`EvtchnStorm`] covers the *Uncontrolled Arbitrary Interrupts
//! Requests* functionality of Table I: spurious events raised on ports a
//! victim never bound. [`MgmtPause`] covers an availability state from
//! the management interface: a domain paused without any legitimate
//! request. The latter has **no exploit path on any simulated version**
//! — which is precisely the case the paper argues intrusion injection
//! exists for: assessing the impact of vulnerabilities that are not
//! (yet) known to exist.

use guestos::World;
use hvsim::EventChannelOp;
use hvsim_mem::DomainId;
use intrusion_core::monitor::{SpuriousInterruptDetector, UnexpectedPauseDetector};
use intrusion_core::{
    AbusiveFunctionality, AttackInterface, ErroneousStateSpec, Injector, IntrusionModel, Monitor,
    ScenarioOutcome, TargetComponent, TriggeringSource, UseCase,
};

/// Ports the storm cases raise on the victim.
const STORM_PORTS: [u16; 4] = [41, 99, 200, 377];

fn victim_of(world: &World) -> DomainId {
    world.dom0()
}

/// **Evtchn-storm**: raise virtual interrupts on ports the victim never
/// bound.
#[derive(Clone, Copy, Debug, Default)]
pub struct EvtchnStorm;

impl UseCase for EvtchnStorm {
    fn name(&self) -> &'static str {
        "EVTCHN-storm"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        IntrusionModel {
            name: "IM-uncontrolled-interrupts".into(),
            description: "unprivileged guest uses the event-channel hypercall to raise \
                          arbitrary virtual interrupts on other domains"
                .into(),
            triggering_source: TriggeringSource::UnprivilegedGuest,
            target_component: TargetComponent::InterruptHandling,
            interface: AttackInterface::Hypercall,
            abusive_functionality: AbusiveFunctionality::UncontrolledArbitraryInterrupts,
            related_advisories: vec!["CVE-2020-27672".into()],
        }
    }

    fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
        let mut outcome = ScenarioOutcome::default();
        // Spray sends on ports the attacker never bound; the vulnerable
        // build trusts the port number.
        let mut accepted = 0;
        for port in 0..64u16 {
            if world
                .hv_mut()
                .hc_event_channel_op(attacker, EventChannelOp::Send { port })
                .is_ok()
            {
                accepted += 1;
            }
        }
        if accepted == 0 {
            return ScenarioOutcome::failed(
                "-EPERM: evtchn_send validates port bindings (fixed)",
            );
        }
        outcome.note(format!("{accepted} unbound sends accepted"));
        // The erroneous state: someone now has spurious pending events.
        let spurious: Vec<(DomainId, Vec<u16>)> = world
            .domains()
            .into_iter()
            .map(|d| (d, world.hv().spurious_pending_ports(d)))
            .filter(|(_, p)| !p.is_empty())
            .collect();
        outcome.erroneous_state = !spurious.is_empty();
        for (d, ports) in &spurious {
            outcome.note(format!("{d} has spurious pending ports {ports:?}"));
        }
        outcome
    }

    fn run_injection(
        &self,
        world: &mut World,
        attacker: DomainId,
        injector: &dyn Injector,
    ) -> ScenarioOutcome {
        let mut outcome = ScenarioOutcome::default();
        let victim = victim_of(world);
        let spec = ErroneousStateSpec::SpuriousPendingEvents {
            dom: victim,
            ports: STORM_PORTS.to_vec(),
        };
        match injector.inject(world, attacker, &spec) {
            Ok(ev) => {
                outcome.erroneous_state = true;
                outcome.note(format!(
                    "injected pending bits into {victim}'s shared-info frame"
                ));
                outcome.state_audit = Some(ev.audit);
            }
            Err(e) => return ScenarioOutcome::failed(e.to_string()),
        }
        outcome
    }

    fn monitor(&self, _world: &World, _attacker: DomainId) -> Monitor {
        Monitor::standard().with(Box::new(SpuriousInterruptDetector))
    }
}

/// **Mgmt-pause**: a domain is paused without any legitimate management
/// request — the availability erroneous state of a compromised
/// toolstack.
#[derive(Clone, Copy, Debug, Default)]
pub struct MgmtPause;

impl UseCase for MgmtPause {
    fn name(&self) -> &'static str {
        "MGMT-pause"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        IntrusionModel {
            name: "IM-mgmt-availability".into(),
            description: "compromised management interface pauses a victim domain"
                .into(),
            triggering_source: TriggeringSource::ManagementInterface,
            target_component: TargetComponent::Scheduler,
            interface: AttackInterface::Hypercall,
            abusive_functionality: AbusiveFunctionality::InduceHangState,
            related_advisories: Vec::new(),
        }
    }

    fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
        // There is no vulnerability on any simulated version that lets an
        // unprivileged guest drive domctl: the exploit path fails
        // everywhere. This is the "unknown vulnerability" case the
        // injection path below still assesses.
        let victim = victim_of(world);
        match world
            .hv_mut()
            .hc_domctl(attacker, victim, hvsim::DomctlOp::Pause)
        {
            Ok(_) => {
                let mut outcome = ScenarioOutcome {
                    erroneous_state: true,
                    ..Default::default()
                };
                outcome.note("unprivileged domctl accepted?!".to_owned());
                outcome
            }
            Err(e) => ScenarioOutcome::failed(format!(
                "domctl privilege check rejected the pause: {e}"
            )),
        }
    }

    fn run_injection(
        &self,
        world: &mut World,
        attacker: DomainId,
        injector: &dyn Injector,
    ) -> ScenarioOutcome {
        let mut outcome = ScenarioOutcome::default();
        let victim = victim_of(world);
        let spec = ErroneousStateSpec::ForcePause { dom: victim };
        match injector.inject(world, attacker, &spec) {
            Ok(ev) => {
                outcome.erroneous_state = true;
                outcome.note(format!("{victim} paused via injected scheduler state"));
                outcome.state_audit = Some(ev.audit);
            }
            Err(e) => return ScenarioOutcome::failed(e.to_string()),
        }
        outcome
    }

    fn monitor(&self, _world: &World, _attacker: DomainId) -> Monitor {
        Monitor::standard().with(Box::new(UnexpectedPauseDetector))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intrusion_core::campaign::standard_world;
    use intrusion_core::{ArbitraryAccessInjector, SecurityViolation};
    use hvsim::XenVersion;

    fn attacker(world: &World) -> DomainId {
        world.domain_by_name("guest03").unwrap()
    }

    #[test]
    fn storm_exploit_only_on_vulnerable_version() {
        let mut w = standard_world(XenVersion::V4_6, false).unwrap();
        let a = attacker(&w);
        let outcome = EvtchnStorm.run_exploit(&mut w, a);
        assert!(outcome.erroneous_state);
        let obs = EvtchnStorm.monitor(&w, a).observe(&w);
        assert!(obs
            .violations
            .iter()
            .any(|v| matches!(v, SecurityViolation::UncontrolledInterrupts { .. })));

        for version in [XenVersion::V4_8, XenVersion::V4_13] {
            let mut w = standard_world(version, false).unwrap();
            let a = attacker(&w);
            let outcome = EvtchnStorm.run_exploit(&mut w, a);
            assert!(!outcome.erroneous_state, "{version}");
            assert!(outcome.error.unwrap().contains("-EPERM"));
        }
    }

    #[test]
    fn storm_injection_on_every_version() {
        for version in XenVersion::ALL {
            let mut w = standard_world(version, true).unwrap();
            let a = attacker(&w);
            let outcome = EvtchnStorm.run_injection(&mut w, a, &ArbitraryAccessInjector);
            assert!(outcome.erroneous_state, "{version}");
            let obs = EvtchnStorm.monitor(&w, a).observe(&w);
            assert!(
                obs.violations
                    .iter()
                    .any(|v| matches!(v, SecurityViolation::UncontrolledInterrupts { .. })),
                "{version}"
            );
        }
    }

    #[test]
    fn mgmt_pause_has_no_exploit_path_anywhere() {
        for version in XenVersion::ALL {
            let mut w = standard_world(version, false).unwrap();
            let a = attacker(&w);
            let outcome = MgmtPause.run_exploit(&mut w, a);
            assert!(!outcome.erroneous_state, "{version}");
        }
    }

    #[test]
    fn mgmt_pause_injection_assesses_the_unknown_vulnerability() {
        let mut w = standard_world(XenVersion::V4_13, true).unwrap();
        let a = attacker(&w);
        let outcome = MgmtPause.run_injection(&mut w, a, &ArbitraryAccessInjector);
        assert!(outcome.erroneous_state);
        let dom0 = w.dom0();
        assert!(w.hv().domain(dom0).unwrap().is_paused());
        let obs = MgmtPause.monitor(&w, a).observe(&w);
        assert!(obs
            .violations
            .iter()
            .any(|v| matches!(v, SecurityViolation::AvailabilityLoss { .. })));
    }

    #[test]
    fn intrusion_models_describe_the_new_sources() {
        let im = EvtchnStorm.intrusion_model();
        assert_eq!(im.target_component, TargetComponent::InterruptHandling);
        let im = MgmtPause.intrusion_model();
        assert_eq!(im.triggering_source, TriggeringSource::ManagementInterface);
        assert_eq!(im.target_component, TargetComponent::Scheduler);
    }
}
