//! Keep-page-reference extension use cases (paper §IV-B).
//!
//! XSA-387 (grant-table v2 status pages surviving a switch back to v1)
//! and XSA-393 (`decrease_reservation` after cache maintenance leaving
//! the mapping live) both give the adversary the *Keep Page Access*
//! abusive functionality: a reference to a page that has been returned
//! to Xen and may be handed to another domain. These use cases extend
//! the paper's four with that family, exercising the injector's
//! accounting interface.

use guestos::World;
use hvsim::{GrantTableVersion, PageType};
use hvsim_mem::{DomainId, Mfn, Pfn};
use intrusion_core::{
    AbusiveFunctionality, ErroneousStateSpec, Injector, IntrusionModel, ScenarioOutcome, UseCase,
};

/// Gives the freed frame to a victim domain (background re-allocation),
/// returning the reused frame if the victim received it.
fn reallocate_to_victim(world: &mut World, victim: DomainId, target: Mfn) -> Option<Mfn> {
    for _ in 0..16 {
        let (_, mfn) = world
            .hv_mut()
            .alloc_domain_frame(victim, PageType::Writable)
            .ok()?;
        if mfn == target {
            return Some(mfn);
        }
    }
    None
}

/// Proves the retained access by writing through it and reading the
/// bytes back from the victim's side.
fn prove_cross_domain(
    world: &mut World,
    attacker: DomainId,
    victim: DomainId,
    mfn: Mfn,
    outcome: &mut ScenarioOutcome,
) {
    match world.hv_mut().guest_write_frame(attacker, mfn, 0, b"KEEPREF!") {
        Ok(()) => {
            let mut buf = [0u8; 8];
            if world.hv_mut().guest_read_frame(victim, mfn, 0, &mut buf).is_ok() && &buf == b"KEEPREF!"
            {
                outcome.note(format!(
                    "attacker wrote into {mfn}, now owned by {victim}: cross-domain write proven"
                ));
            }
        }
        Err(e) => outcome.note(format!("stale access refused: {e}")),
    }
}

/// **XSA-393-keep**: `decrease_reservation` after a cache-maintenance
/// operation leaves the guest's mapping of the freed page live.
#[derive(Clone, Copy, Debug, Default)]
pub struct Xsa393Keep;

impl UseCase for Xsa393Keep {
    fn name(&self) -> &'static str {
        "XSA-393-keep"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        IntrusionModel::guest_hypercall_memory(
            "IM-keep-page-access",
            AbusiveFunctionality::KeepPageAccess,
            &["XSA-393", "XSA-387"],
        )
    }

    fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
        let mut outcome = ScenarioOutcome::default();
        let victim = world.dom0();
        let Some(mfn) = world.hv().domain(attacker).ok().and_then(|d| d.p2m(Pfn::new(20))) else {
            return ScenarioOutcome::failed("attacker pfn 20 not populated");
        };
        // The vulnerable sequence: cache maintenance, then release.
        if let Err(e) =
            world
                .hv_mut()
                .hc_decrease_reservation(attacker, &[Pfn::new(20)], true)
        {
            return ScenarioOutcome::failed(format!("decrease_reservation failed: {e}"));
        }
        let spec = ErroneousStateSpec::RetainFrameAccess { dom: attacker, mfn };
        let audit = spec.audit(world);
        outcome.erroneous_state = audit.present;
        outcome.state_audit = Some(audit);
        if !outcome.erroneous_state {
            outcome.error = Some("mapping was removed with the page (fixed)".into());
            return outcome;
        }
        outcome.note(format!("freed {mfn} but the guest mapping survived"));
        // Background activity hands the frame to a victim...
        if reallocate_to_victim(world, victim, mfn).is_some() {
            outcome.note(format!("{mfn} re-allocated to {victim}"));
            prove_cross_domain(world, attacker, victim, mfn, &mut outcome);
        }
        outcome
    }

    fn run_injection(
        &self,
        world: &mut World,
        attacker: DomainId,
        injector: &dyn Injector,
    ) -> ScenarioOutcome {
        let mut outcome = ScenarioOutcome::default();
        let victim = world.dom0();
        // Inject the erroneous state directly: retained access to a frame
        // that is then legitimately freed and re-allocated. Use the same
        // frame flow as the exploit for comparability.
        let Some(mfn) = world.hv().domain(attacker).ok().and_then(|d| d.p2m(Pfn::new(20))) else {
            return ScenarioOutcome::failed("attacker pfn 20 not populated");
        };
        // Fixed-path release (no vulnerability involved)...
        if let Err(e) =
            world
                .hv_mut()
                .hc_decrease_reservation(attacker, &[Pfn::new(20)], false)
        {
            return ScenarioOutcome::failed(format!("decrease_reservation failed: {e}"));
        }
        // ...then the injector recreates the stale reference.
        let spec = ErroneousStateSpec::RetainFrameAccess { dom: attacker, mfn };
        match injector.inject(world, attacker, &spec) {
            Ok(ev) => {
                outcome.erroneous_state = true;
                outcome.state_audit = Some(ev.audit);
                outcome.note(format!("injected retained access to {mfn}"));
            }
            Err(e) => return ScenarioOutcome::failed(e.to_string()),
        }
        if reallocate_to_victim(world, victim, mfn).is_some() {
            outcome.note(format!("{mfn} re-allocated to {victim}"));
            prove_cross_domain(world, attacker, victim, mfn, &mut outcome);
        }
        outcome
    }
}

/// **XSA-387-keep**: grant-table v2 status pages survive the switch back
/// to v1.
#[derive(Clone, Copy, Debug, Default)]
pub struct Xsa387Keep;

impl UseCase for Xsa387Keep {
    fn name(&self) -> &'static str {
        "XSA-387-keep"
    }

    fn intrusion_model(&self) -> IntrusionModel {
        IntrusionModel::guest_hypercall_memory(
            "IM-keep-page-reference",
            AbusiveFunctionality::KeepPageAccess,
            &["XSA-387"],
        )
    }

    fn run_exploit(&self, world: &mut World, attacker: DomainId) -> ScenarioOutcome {
        let mut outcome = ScenarioOutcome::default();
        // Switch to grant table v2 (allocates Xen status pages)...
        if let Err(e) = world
            .hv_mut()
            .hc_grant_table_set_version(attacker, GrantTableVersion::V2)
        {
            return ScenarioOutcome::failed(format!("set_version v2 failed: {e}"));
        }
        let status = world.hv().domain(attacker).ok().and_then(|d| {
            d.grant_table().status_frames().first().copied()
        });
        let Some(status) = status else {
            return ScenarioOutcome::failed("no status frame allocated");
        };
        outcome.note(format!("grant v2 status page at {status}"));
        // ...and back to v1, which must release them.
        if let Err(e) = world
            .hv_mut()
            .hc_grant_table_set_version(attacker, GrantTableVersion::V1)
        {
            return ScenarioOutcome::failed(format!("set_version v1 failed: {e}"));
        }
        let spec = ErroneousStateSpec::RetainFrameAccess {
            dom: attacker,
            mfn: status,
        };
        let audit = spec.audit(world);
        outcome.erroneous_state = audit.present;
        outcome.state_audit = Some(audit);
        if !outcome.erroneous_state {
            outcome.error = Some("status pages correctly released at switch (fixed)".into());
            return outcome;
        }
        outcome.note("status page still mapped after v2 -> v1 switch");
        let victim = world.dom0();
        if reallocate_to_victim(world, victim, status).is_some() {
            outcome.note(format!("{status} re-allocated to {victim}"));
            prove_cross_domain(world, attacker, victim, status, &mut outcome);
        }
        outcome
    }

    fn run_injection(
        &self,
        world: &mut World,
        attacker: DomainId,
        injector: &dyn Injector,
    ) -> ScenarioOutcome {
        let mut outcome = ScenarioOutcome::default();
        // Clean v2 -> v1 cycle on the (fixed or vulnerable) system...
        if world
            .hv_mut()
            .hc_grant_table_set_version(attacker, GrantTableVersion::V2)
            .is_err()
        {
            return ScenarioOutcome::failed("set_version v2 failed");
        }
        let status = world
            .hv()
            .domain(attacker)
            .ok()
            .and_then(|d| d.grant_table().status_frames().first().copied());
        let Some(status) = status else {
            return ScenarioOutcome::failed("no status frame allocated");
        };
        // Drop our legitimate access first so the injected state is the
        // erroneous one.
        if world
            .hv_mut()
            .hc_grant_table_set_version(attacker, GrantTableVersion::V1)
            .is_err()
        {
            return ScenarioOutcome::failed("set_version v1 failed");
        }
        let already_retained = world
            .hv()
            .domain(attacker)
            .map(|d| d.retains_access(status))
            .unwrap_or(false);
        let spec = ErroneousStateSpec::RetainFrameAccess {
            dom: attacker,
            mfn: status,
        };
        if already_retained {
            // Vulnerable build: the state exists without injection; audit it.
            let audit = spec.audit(world);
            outcome.erroneous_state = audit.present;
            outcome.state_audit = Some(audit);
            outcome.note("vulnerable build leaked the status page by itself");
        } else {
            match injector.inject(world, attacker, &spec) {
                Ok(ev) => {
                    outcome.erroneous_state = true;
                    outcome.state_audit = Some(ev.audit);
                    outcome.note(format!("injected retained access to status page {status}"));
                }
                Err(e) => return ScenarioOutcome::failed(e.to_string()),
            }
        }
        let victim = world.dom0();
        if reallocate_to_victim(world, victim, status).is_some() {
            prove_cross_domain(world, attacker, victim, status, &mut outcome);
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use intrusion_core::campaign::standard_world;
    use intrusion_core::{ArbitraryAccessInjector, Monitor, SecurityViolation};
    use hvsim::XenVersion;

    fn attacker(world: &World) -> DomainId {
        world.domain_by_name("guest03").unwrap()
    }

    fn cross_domain_violation(world: &World) -> bool {
        Monitor::standard()
            .observe(world)
            .violations
            .iter()
            .any(|v| matches!(v, SecurityViolation::CrossDomainAccess { .. }))
    }

    #[test]
    fn xsa393_exploit_leaks_on_4_6_only() {
        let mut w = standard_world(XenVersion::V4_6, false).unwrap();
        let a = attacker(&w);
        let outcome = Xsa393Keep.run_exploit(&mut w, a);
        assert!(outcome.erroneous_state);
        assert!(cross_domain_violation(&w));

        for version in [XenVersion::V4_8, XenVersion::V4_13] {
            let mut w = standard_world(version, false).unwrap();
            let a = attacker(&w);
            let outcome = Xsa393Keep.run_exploit(&mut w, a);
            assert!(!outcome.erroneous_state, "{version}");
            assert!(!cross_domain_violation(&w), "{version}");
        }
    }

    #[test]
    fn xsa393_injection_works_everywhere() {
        for version in XenVersion::ALL {
            let mut w = standard_world(version, true).unwrap();
            let a = attacker(&w);
            let outcome = Xsa393Keep.run_injection(&mut w, a, &ArbitraryAccessInjector);
            assert!(outcome.erroneous_state, "{version}");
            assert!(cross_domain_violation(&w), "{version}");
        }
    }

    #[test]
    fn xsa387_exploit_leaks_status_page_on_4_6() {
        let mut w = standard_world(XenVersion::V4_6, false).unwrap();
        let a = attacker(&w);
        let outcome = Xsa387Keep.run_exploit(&mut w, a);
        assert!(outcome.erroneous_state);

        let mut w = standard_world(XenVersion::V4_8, false).unwrap();
        let a = attacker(&w);
        let outcome = Xsa387Keep.run_exploit(&mut w, a);
        assert!(!outcome.erroneous_state);
        assert!(outcome.error.unwrap().contains("correctly released"));
    }

    #[test]
    fn xsa387_injection_recreates_leak_on_fixed_build() {
        let mut w = standard_world(XenVersion::V4_13, true).unwrap();
        let a = attacker(&w);
        let outcome = Xsa387Keep.run_injection(&mut w, a, &ArbitraryAccessInjector);
        assert!(outcome.erroneous_state, "{:?}", outcome.error);
        assert!(cross_domain_violation(&w));
    }
}
