//! The abusive-functionality study dataset (paper §IV-D, Table I).
//!
//! The paper's preliminary study randomly selected 100 CVEs from the Xen
//! Security Advisory list and classified, from public metadata, the
//! abusive functionality an attacker acquires by exploiting each. This
//! module carries that study as a machine-readable dataset: 100 advisory
//! records, each tagged with one or two [`AbusiveFunctionality`] values
//! (8 records carry two — "some CVEs can have more than one abusive
//! functionality depending on how they are exploited"), for 108 tags
//! total. The per-functionality counts reproduce Table I exactly.

mod data;

pub use data::ADVISORIES;

use intrusion_core::report::TextTable;
use intrusion_core::{AbusiveFunctionality, FunctionalityClass};
use serde::Serialize;
use std::collections::BTreeMap;

/// One studied advisory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Advisory {
    /// Xen Security Advisory identifier.
    pub xsa: &'static str,
    /// Assigned CVE.
    pub cve: &'static str,
    /// Publication year.
    pub year: u16,
    /// One-line summary paraphrased from the advisory metadata.
    pub summary: &'static str,
    /// The abusive functionalities an exploiting attacker acquires.
    pub functionalities: &'static [AbusiveFunctionality],
}

/// Groups the dataset by abusive functionality.
pub fn classify() -> BTreeMap<AbusiveFunctionality, Vec<&'static Advisory>> {
    let mut map: BTreeMap<AbusiveFunctionality, Vec<&'static Advisory>> = BTreeMap::new();
    for adv in ADVISORIES {
        for &f in adv.functionalities {
            map.entry(f).or_default().push(adv);
        }
    }
    map
}

/// Per-functionality tag counts over the dataset.
pub fn counts() -> BTreeMap<AbusiveFunctionality, usize> {
    classify().into_iter().map(|(f, v)| (f, v.len())).collect()
}

/// CVE tags per class — the Table I section headers (the paper's
/// per-class totals are the sums of the rows beneath them; a CVE tagged
/// with two functionalities contributes to each).
pub fn class_cve_counts() -> BTreeMap<FunctionalityClass, usize> {
    let mut map: BTreeMap<FunctionalityClass, usize> = BTreeMap::new();
    for adv in ADVISORIES {
        for &f in adv.functionalities {
            *map.entry(f.class()).or_default() += 1;
        }
    }
    map
}

/// Renders Table I from the dataset.
pub fn render_table1() -> String {
    let counts = counts();
    let class_counts = class_cve_counts();
    let mut out = String::new();
    out.push_str("TABLE I: abusive functionalities obtained from activating Xen vulnerabilities\n");
    for class in FunctionalityClass::ALL {
        let mut table = TextTable::new([
            format!("{} - {} CVEs", class.label(), class_counts.get(&class).copied().unwrap_or(0)),
            "count".to_owned(),
        ]);
        for f in AbusiveFunctionality::ALL {
            if f.class() == class {
                table.row([
                    f.label().to_owned(),
                    format!("{:02}", counts.get(&f).copied().unwrap_or(0)),
                ]);
            }
        }
        out.push_str(&table.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_100_advisories() {
        assert_eq!(ADVISORIES.len(), 100);
    }

    #[test]
    fn every_functionality_count_matches_table_one() {
        let counts = counts();
        for f in AbusiveFunctionality::ALL {
            assert_eq!(
                counts.get(&f).copied().unwrap_or(0),
                f.paper_count(),
                "count for {f}"
            );
        }
    }

    #[test]
    fn total_tags_is_108_over_100_cves() {
        let total: usize = ADVISORIES.iter().map(|a| a.functionalities.len()).sum();
        assert_eq!(total, 108);
        let dual = ADVISORIES.iter().filter(|a| a.functionalities.len() == 2).count();
        assert_eq!(dual, 8);
        assert!(ADVISORIES.iter().all(|a| !a.functionalities.is_empty()));
        assert!(ADVISORIES.iter().all(|a| a.functionalities.len() <= 2));
    }

    #[test]
    fn class_headers_match_paper() {
        let classes = class_cve_counts();
        assert_eq!(classes[&FunctionalityClass::MemoryAccess], 35);
        assert_eq!(classes[&FunctionalityClass::MemoryManagement], 40);
        assert_eq!(classes[&FunctionalityClass::ExceptionalConditions], 11);
        assert_eq!(classes[&FunctionalityClass::NonMemoryRelated], 22);
    }

    #[test]
    fn known_advisories_present_and_classified() {
        let find = |xsa: &str| ADVISORIES.iter().find(|a| a.xsa == xsa).unwrap();
        assert!(find("XSA-148")
            .functionalities
            .contains(&AbusiveFunctionality::GuestWritablePageTableEntry));
        assert!(find("XSA-182")
            .functionalities
            .contains(&AbusiveFunctionality::GuestWritablePageTableEntry));
        assert!(find("XSA-212")
            .functionalities
            .contains(&AbusiveFunctionality::WriteUnauthorizedArbitraryMemory));
        assert!(find("XSA-387")
            .functionalities
            .contains(&AbusiveFunctionality::KeepPageAccess));
        assert!(find("XSA-393")
            .functionalities
            .contains(&AbusiveFunctionality::KeepPageAccess));
    }

    #[test]
    fn dual_tag_examples_from_paper_present() {
        let c1 = ADVISORIES.iter().find(|a| a.cve == "CVE-2019-17343").unwrap();
        let c2 = ADVISORIES.iter().find(|a| a.cve == "CVE-2020-27672").unwrap();
        assert_eq!(c1.functionalities.len(), 2);
        assert_eq!(c2.functionalities.len(), 2);
    }

    #[test]
    fn identifiers_are_unique() {
        let mut cves = std::collections::BTreeSet::new();
        let mut xsas = std::collections::BTreeSet::new();
        for a in ADVISORIES {
            assert!(cves.insert(a.cve), "duplicate cve {}", a.cve);
            assert!(xsas.insert(a.xsa), "duplicate xsa {}", a.xsa);
        }
    }

    #[test]
    fn rendered_table_contains_all_rows() {
        let t = render_table1();
        assert!(t.contains("Memory Access - 35 CVEs"));
        assert!(t.contains("Keep Page Access"));
        assert!(t.contains("Induce a Hang State"));
        assert!(t.contains("20"));
    }
}
