//! The paper's evaluation material: four publicly disclosed Xen exploits
//! re-implemented as guest attack programs, their intrusion-injection
//! counterparts, keep-page-reference extension cases, and the
//! 100-advisory abusive-functionality dataset behind Table I.
//!
//! # The four use cases (paper §VI-A, Table II)
//!
//! | use case | abusive functionality | strategy |
//! |---|---|---|
//! | [`Xsa212Crash`] | Write Arbitrary Memory | corrupt the IDT #PF gate via the unchecked `memory_exchange` handle; the next fault double-faults and panics Xen |
//! | [`Xsa212Priv`]  | Write Arbitrary Memory | hide a payload in physical memory, link a forged PMD into the shared hypervisor L3 so every guest maps it, register it as an interrupt handler, invoke it everywhere |
//! | [`Xsa148Priv`]  | Write Page Table Entries | forge a PSE superpage window over machine memory, scan for dom0's start-info, patch a backdoor into dom0's vDSO, catch a root reverse shell |
//! | [`Xsa182Test`]  | Write Page Table Entries | create a read-only L4 self-map, flip its RW bit through the vulnerable fast path, prove writability through the crafted address |
//!
//! Each type implements [`intrusion_core::UseCase`] with both the
//! *exploit* path (succeeds only on Xen 4.6, where the vulnerabilities
//! exist) and the *injection* path (the same erroneous state induced with
//! the `arbitrary_access` injector, on any version).
//!
//! # Example
//!
//! ```
//! use intrusion_core::{Campaign, Mode};
//! use hvsim::XenVersion;
//! use xsa_exploits::Xsa212Crash;
//!
//! let report = Campaign::new()
//!     .with_use_case(Box::new(Xsa212Crash))
//!     .versions(&[XenVersion::V4_6])
//!     .modes(&[Mode::Exploit])
//!     .run();
//! let cell = report.cells().first().unwrap();
//! assert!(cell.erroneous_state && cell.violated());
//! ```

pub mod advisories;
mod exploits;
mod extensions;
mod interrupts;

pub use exploits::{
    primitives, Xsa148Priv, Xsa182Test, Xsa212Crash, Xsa212Priv, SELFMAP_INDEX,
};
pub use extensions::{Xsa387Keep, Xsa393Keep};
pub use interrupts::{EvtchnStorm, MgmtPause};

use intrusion_core::UseCase;

/// The paper's four use cases, in Table II order.
pub fn paper_use_cases() -> Vec<Box<dyn UseCase>> {
    vec![
        Box::new(Xsa212Crash),
        Box::new(Xsa212Priv),
        Box::new(Xsa148Priv),
        Box::new(Xsa182Test),
    ]
}

/// The keep-page-reference extension cases (§IV-B's XSA-387/XSA-393
/// discussion, beyond the paper's Table III).
pub fn extension_use_cases() -> Vec<Box<dyn UseCase>> {
    vec![
        Box::new(Xsa393Keep),
        Box::new(Xsa387Keep),
        Box::new(EvtchnStorm),
        Box::new(MgmtPause),
    ]
}
