//! Error type for machine-memory operations.

use crate::{Mfn, PageType, PhysAddr};
use std::error::Error;
use std::fmt;

/// Errors raised by the machine-memory substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// A frame number beyond the end of installed machine memory.
    BadFrame {
        /// The offending frame.
        mfn: Mfn,
        /// Number of installed frames.
        limit: u64,
    },
    /// A physical byte access crossing the end of installed memory.
    OutOfRange {
        /// Start of the access.
        addr: PhysAddr,
        /// Length in bytes.
        len: usize,
    },
    /// Attempt to take a conflicting page type reference.
    TypeConflict {
        /// The type the frame currently has.
        have: PageType,
        /// The type that was requested.
        wanted: PageType,
    },
    /// A reference count was decremented below zero.
    RefUnderflow,
    /// The free frame pool is exhausted.
    NoFreeFrames,
    /// A domain exceeded its maximum page allocation.
    DomainQuotaExceeded,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::BadFrame { mfn, limit } => {
                write!(f, "machine frame {mfn} beyond installed memory ({limit} frames)")
            }
            MemError::OutOfRange { addr, len } => {
                write!(f, "physical access of {len} bytes at {addr} is out of range")
            }
            MemError::TypeConflict { have, wanted } => {
                write!(f, "page type conflict: frame is {have}, wanted {wanted}")
            }
            MemError::RefUnderflow => f.write_str("page reference count underflow"),
            MemError::NoFreeFrames => f.write_str("no free machine frames"),
            MemError::DomainQuotaExceeded => f.write_str("domain page quota exceeded"),
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = MemError::BadFrame {
            mfn: Mfn::new(0x100),
            limit: 64,
        };
        assert_eq!(
            e.to_string(),
            "machine frame 0x100 beyond installed memory (64 frames)"
        );
        assert!(MemError::NoFreeFrames.to_string().contains("no free"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync + std::error::Error>() {}
        assert_send_sync::<MemError>();
    }
}
