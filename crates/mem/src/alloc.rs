//! Free-list frame allocator with per-domain accounting.

use crate::{DomainId, MachineMemory, MemError, Mfn, PageType};
use std::collections::BTreeMap;

/// Allocates machine frames to domains and tracks per-domain usage against
/// a quota, mirroring Xen's `max_pages`/`tot_pages` accounting.
///
/// The allocator hands out the lowest-numbered free frame first, which keeps
/// simulated memory layouts deterministic — important both for reproducible
/// experiments and for exploits that fingerprint physical memory.
#[derive(Clone, Debug)]
pub struct FrameAllocator {
    free: Vec<Mfn>,
    quotas: BTreeMap<DomainId, Quota>,
}

#[derive(Clone, Copy, Debug, Default)]
struct Quota {
    max_pages: u64,
    tot_pages: u64,
}

impl FrameAllocator {
    /// Creates an allocator managing frames `first..limit`.
    ///
    /// Frames below `first` are typically reserved for the hypervisor
    /// image itself and never enter the free pool.
    pub fn new(first: Mfn, limit: Mfn) -> Self {
        // Keep the free list sorted descending so `pop` yields the lowest
        // frame first.
        let free = (first.raw()..limit.raw()).rev().map(Mfn::new).collect();
        Self {
            free,
            quotas: BTreeMap::new(),
        }
    }

    /// Number of frames currently free.
    pub fn free_frames(&self) -> usize {
        self.free.len()
    }

    /// Sets a domain's maximum page quota.
    pub fn set_quota(&mut self, dom: DomainId, max_pages: u64) {
        self.quotas.entry(dom).or_default().max_pages = max_pages;
    }

    /// Pages currently allocated to `dom`.
    pub fn pages_of(&self, dom: DomainId) -> u64 {
        self.quotas.get(&dom).map_or(0, |q| q.tot_pages)
    }

    /// Allocates one frame to `dom` with the given initial page type.
    ///
    /// The frame is zeroed (a fresh allocation must never leak a previous
    /// owner's data — the "Read Unauthorized Memory" abusive functionality
    /// is exactly a violation of this rule).
    ///
    /// # Errors
    ///
    /// [`MemError::NoFreeFrames`] when the pool is empty,
    /// [`MemError::DomainQuotaExceeded`] when `dom` is at its quota.
    pub fn alloc(
        &mut self,
        mem: &mut MachineMemory,
        dom: DomainId,
        page_type: PageType,
    ) -> Result<Mfn, MemError> {
        let quota = self.quotas.entry(dom).or_default();
        if quota.max_pages != 0 && quota.tot_pages >= quota.max_pages {
            return Err(MemError::DomainQuotaExceeded);
        }
        let mfn = self.free.pop().ok_or(MemError::NoFreeFrames)?;
        quota.tot_pages += 1;
        mem.zero_frame(mfn)?;
        mem.info_mut(mfn)?.assign(dom, page_type);
        Ok(mfn)
    }

    /// Frees a frame, returning it to the pool.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn free(&mut self, mem: &mut MachineMemory, mfn: Mfn) -> Result<(), MemError> {
        let owner = mem.info(mfn)?.owner();
        if let Some(dom) = owner {
            if let Some(q) = self.quotas.get_mut(&dom) {
                q.tot_pages = q.tot_pages.saturating_sub(1);
            }
        }
        mem.info_mut(mfn)?.release();
        self.free.push(mfn);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MachineMemory, FrameAllocator) {
        let mem = MachineMemory::new(16);
        let alloc = FrameAllocator::new(Mfn::new(4), Mfn::new(16));
        (mem, alloc)
    }

    #[test]
    fn alloc_lowest_first_and_zeroed() {
        let (mut mem, mut alloc) = setup();
        mem.write_u64(Mfn::new(4).base(), 0x4141).unwrap();
        let mfn = alloc.alloc(&mut mem, DomainId::DOM0, PageType::Writable).unwrap();
        assert_eq!(mfn, Mfn::new(4));
        assert_eq!(mem.read_u64(mfn.base()).unwrap(), 0, "fresh frames are scrubbed");
        assert_eq!(mem.info(mfn).unwrap().owner(), Some(DomainId::DOM0));
    }

    #[test]
    fn quota_enforced() {
        let (mut mem, mut alloc) = setup();
        let dom = DomainId::new(2);
        alloc.set_quota(dom, 2);
        alloc.alloc(&mut mem, dom, PageType::Writable).unwrap();
        alloc.alloc(&mut mem, dom, PageType::Writable).unwrap();
        assert!(matches!(
            alloc.alloc(&mut mem, dom, PageType::Writable),
            Err(MemError::DomainQuotaExceeded)
        ));
        assert_eq!(alloc.pages_of(dom), 2);
    }

    #[test]
    fn free_returns_frame_and_credits_quota() {
        let (mut mem, mut alloc) = setup();
        let dom = DomainId::new(1);
        let before = alloc.free_frames();
        let mfn = alloc.alloc(&mut mem, dom, PageType::Writable).unwrap();
        assert_eq!(alloc.free_frames(), before - 1);
        alloc.free(&mut mem, mfn).unwrap();
        assert_eq!(alloc.free_frames(), before);
        assert_eq!(alloc.pages_of(dom), 0);
        assert_eq!(mem.info(mfn).unwrap().owner(), None);
    }

    #[test]
    fn pool_exhaustion() {
        let mut mem = MachineMemory::new(6);
        let mut alloc = FrameAllocator::new(Mfn::new(4), Mfn::new(6));
        alloc.alloc(&mut mem, DomainId::DOM0, PageType::Writable).unwrap();
        alloc.alloc(&mut mem, DomainId::DOM0, PageType::Writable).unwrap();
        assert!(matches!(
            alloc.alloc(&mut mem, DomainId::DOM0, PageType::Writable),
            Err(MemError::NoFreeFrames)
        ));
    }

    #[test]
    fn zero_quota_means_unlimited() {
        let (mut mem, mut alloc) = setup();
        let dom = DomainId::new(3);
        for _ in 0..12 {
            alloc.alloc(&mut mem, dom, PageType::Writable).unwrap();
        }
        assert_eq!(alloc.pages_of(dom), 12);
    }
}
