//! The byte-accurate machine memory array.
//!
//! Frames are stored copy-on-write at **two levels**: the frame and
//! accounting vectors themselves sit behind an [`Arc`], so cloning a
//! [`MachineMemory`] is two reference-count bumps — O(1), no matter how
//! much memory is installed. The first mutation after a clone
//! privatizes the vector ([`Arc::make_mut`]; one pointer copy per
//! frame), and each materialized frame is itself an
//! `Arc<[u8; PAGE_SIZE]>` shared until written, so a snapshot still
//! costs only O(touched pages) of real memory over its lifetime — the
//! behaviour a real MMU gives fork-style snapshots.
//!
//! Writes also maintain the **page-table write generation**: a counter
//! bumped only when a store lands in a frame whose [`PageInfo`] type is
//! one of the page-table types (or when such a frame's accounting is
//! mutated, which covers demote-then-write sequences). The software TLB
//! in `hvsim-paging` keys its validity off this counter, so data writes
//! never flush cached translations while PTE writes always do.

use crate::{MemError, Mfn, PageInfo, PhysAddr, PAGE_SIZE};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// One machine frame's contents.
///
/// Frames start life as all-zeroes and are only materialized on first
/// write, so large simulated machines stay cheap until touched. The
/// materialized representation is shared between clones until written.
#[derive(Clone, Debug, Default)]
enum FrameData {
    /// The frame has never been written; reads see zeroes.
    #[default]
    Zero,
    /// Materialized contents, shared copy-on-write between snapshots.
    Data(Arc<[u8; PAGE_SIZE]>),
}

impl FrameData {
    fn bytes(&self) -> Option<&[u8; PAGE_SIZE]> {
        match self {
            FrameData::Zero => None,
            FrameData::Data(b) => Some(b),
        }
    }
}

/// Copy-on-write accounting for one memory image, reported per campaign
/// cell so `BENCH_campaign.json` shows how much of a snapshot stayed
/// shared.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Installed frames.
    pub frames_total: u64,
    /// Materialized frames currently shared with at least one other
    /// snapshot (reference count > 1). Depends on which sibling
    /// snapshots are alive at sampling time, so it is zeroed by report
    /// normalization.
    pub frames_shared: u64,
    /// Frames this image privatized via copy-on-write since it was
    /// cloned (zero-frame materializations are not copies and are not
    /// counted).
    pub frames_copied: u64,
}

/// All installed machine memory: frame contents plus per-frame accounting.
///
/// This is the single source of truth every other subsystem (page walks,
/// hypercalls, guests, the intrusion injector) reads and mutates.
#[derive(Debug)]
pub struct MachineMemory {
    frames: Arc<Vec<FrameData>>,
    info: Arc<Vec<PageInfo>>,
    /// Bumped on every store to (or accounting mutation of) a
    /// page-table-typed frame; see the module docs.
    pt_gen: u64,
    /// Copy-on-write breaks since this image was created or cloned.
    frames_copied: u64,
}

impl Clone for MachineMemory {
    /// A copy-on-write snapshot: two reference-count bumps, independent
    /// of installed memory size. Frame contents and accounting are
    /// shared until either image mutates them. The clone starts its own
    /// [`SnapshotStats::frames_copied`] count at zero; the page-table
    /// write generation carries over so cached translations keyed
    /// against the parent stay comparable.
    fn clone(&self) -> Self {
        Self {
            frames: Arc::clone(&self.frames),
            info: Arc::clone(&self.info),
            pt_gen: self.pt_gen,
            frames_copied: 0,
        }
    }
}

impl MachineMemory {
    /// Creates a machine with `frames` installed 4 KiB frames, all zeroed
    /// and unowned.
    pub fn new(frames: usize) -> Self {
        Self {
            frames: Arc::new((0..frames).map(|_| FrameData::Zero).collect()),
            info: Arc::new(vec![PageInfo::new(); frames]),
            pt_gen: 0,
            frames_copied: 0,
        }
    }

    /// Number of installed frames.
    pub fn frame_count(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Total installed bytes.
    pub fn size_bytes(&self) -> u64 {
        self.frame_count() * PAGE_SIZE as u64
    }

    /// Returns `true` if `mfn` addresses an installed frame.
    pub fn contains(&self, mfn: Mfn) -> bool {
        mfn.raw() < self.frame_count()
    }

    fn check_frame(&self, mfn: Mfn) -> Result<usize, MemError> {
        if self.contains(mfn) {
            Ok(mfn.raw() as usize)
        } else {
            Err(MemError::BadFrame {
                mfn,
                limit: self.frame_count(),
            })
        }
    }

    /// The page-table write generation. Translation caches compare this
    /// against the value they last observed: unchanged means no
    /// page-table-typed frame was written (or re-accounted) since, so
    /// every cached walk is still valid.
    pub fn pt_generation(&self) -> u64 {
        self.pt_gen
    }

    /// Copy-on-write accounting for this image.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        // While the whole frame vector is still shared (no mutation
        // since the clone), every materialized frame is shared with the
        // sibling image even though its own refcount is untouched.
        let vec_shared = Arc::strong_count(&self.frames) > 1;
        SnapshotStats {
            frames_total: self.frame_count(),
            frames_shared: self
                .frames
                .iter()
                .filter(|f| match f {
                    FrameData::Data(a) => vec_shared || Arc::strong_count(a) > 1,
                    FrameData::Zero => false,
                })
                .count() as u64,
            frames_copied: self.frames_copied,
        }
    }

    /// A clone that materializes a private copy of every frame — the
    /// pre-COW snapshot behaviour, kept as the baseline the
    /// `snapshot_cow` bench compares reference-count cloning against.
    pub fn deep_copy(&self) -> Self {
        Self {
            frames: Arc::new(
                self.frames
                    .iter()
                    .map(|f| match f {
                        FrameData::Zero => FrameData::Zero,
                        FrameData::Data(b) => FrameData::Data(Arc::new(**b)),
                    })
                    .collect(),
            ),
            info: Arc::new(self.info.as_ref().clone()),
            pt_gen: self.pt_gen,
            frames_copied: 0,
        }
    }

    /// Bumps the page-table write generation if frame `idx` is currently
    /// typed as a page table.
    fn note_pt_mutation(&mut self, idx: usize) {
        if self.info[idx].page_type().is_page_table() {
            self.pt_gen = self.pt_gen.wrapping_add(1);
        }
    }

    /// Mutable view of one frame's bytes, materializing zero frames and
    /// breaking copy-on-write sharing as needed. The first mutation
    /// after a clone also privatizes the frame vector itself (which
    /// bumps every materialized frame's refcount, keeping the per-frame
    /// sharing accounting intact).
    fn frame_bytes_mut(&mut self, idx: usize) -> &mut [u8; PAGE_SIZE] {
        let frames = Arc::make_mut(&mut self.frames);
        if let FrameData::Data(arc) = &frames[idx] {
            if Arc::strong_count(arc) > 1 {
                self.frames_copied += 1;
            }
        }
        let slot = &mut frames[idx];
        if matches!(slot, FrameData::Zero) {
            *slot = FrameData::Data(Arc::new([0u8; PAGE_SIZE]));
        }
        match slot {
            FrameData::Data(arc) => Arc::make_mut(arc),
            FrameData::Zero => unreachable!("frame was just materialized"),
        }
    }

    /// Accounting record for a frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn info(&self, mfn: Mfn) -> Result<&PageInfo, MemError> {
        let idx = self.check_frame(mfn)?;
        Ok(&self.info[idx])
    }

    /// Mutable accounting record for a frame.
    ///
    /// Handing out mutable accounting access to a page-table-typed frame
    /// bumps the page-table write generation: a type demotion through
    /// this handle could otherwise let later *data* writes to the frame
    /// slip past translation caches that walked through it while it was
    /// still a page table.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn info_mut(&mut self, mfn: Mfn) -> Result<&mut PageInfo, MemError> {
        let idx = self.check_frame(mfn)?;
        self.note_pt_mutation(idx);
        Ok(&mut Arc::make_mut(&mut self.info)[idx])
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// The access may cross frame boundaries but not the end of installed
    /// memory.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let end = addr
            .raw()
            .checked_add(buf.len() as u64)
            .ok_or(MemError::OutOfRange { addr, len: buf.len() })?;
        if end > self.size_bytes() {
            return Err(MemError::OutOfRange { addr, len: buf.len() });
        }
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < buf.len() {
            let frame = cursor.frame();
            let off = cursor.page_offset();
            let chunk = (PAGE_SIZE - off).min(buf.len() - filled);
            match self.frames[frame.raw() as usize].bytes() {
                Some(bytes) => buf[filled..filled + chunk].copy_from_slice(&bytes[off..off + chunk]),
                None => buf[filled..filled + chunk].fill(0),
            }
            filled += chunk;
            cursor = cursor.offset(chunk as u64);
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) -> Result<(), MemError> {
        let end = addr
            .raw()
            .checked_add(buf.len() as u64)
            .ok_or(MemError::OutOfRange { addr, len: buf.len() })?;
        if end > self.size_bytes() {
            return Err(MemError::OutOfRange { addr, len: buf.len() });
        }
        let mut cursor = addr;
        let mut written = 0usize;
        while written < buf.len() {
            let frame = cursor.frame();
            let idx = frame.raw() as usize;
            let off = cursor.page_offset();
            let chunk = (PAGE_SIZE - off).min(buf.len() - written);
            self.note_pt_mutation(idx);
            self.frame_bytes_mut(idx)[off..off + chunk]
                .copy_from_slice(&buf[written..written + chunk]);
            written += chunk;
            cursor = cursor.offset(chunk as u64);
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, MemError> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) -> Result<(), MemError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Zeroes an entire frame.
    ///
    /// The frame reverts to the unmaterialized zero representation, so
    /// a snapshot's untouched zero frames stay free after cloning.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn zero_frame(&mut self, mfn: Mfn) -> Result<(), MemError> {
        let idx = self.check_frame(mfn)?;
        self.note_pt_mutation(idx);
        Arc::make_mut(&mut self.frames)[idx] = FrameData::Zero;
        Ok(())
    }

    /// Copies a full frame's contents into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn read_frame(&self, mfn: Mfn, out: &mut [u8; PAGE_SIZE]) -> Result<(), MemError> {
        let idx = self.check_frame(mfn)?;
        match self.frames[idx].bytes() {
            Some(bytes) => out.copy_from_slice(bytes),
            None => out.fill(0),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainId, PageType};
    use proptest::prelude::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let mem = MachineMemory::new(4);
        let mut buf = [0xffu8; 32];
        mem.read(PhysAddr::new(100), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn read_write_roundtrip_within_frame() {
        let mut mem = MachineMemory::new(4);
        mem.write(PhysAddr::new(16), b"hello world").unwrap();
        let mut buf = [0u8; 11];
        mem.read(PhysAddr::new(16), &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn read_write_across_frame_boundary() {
        let mut mem = MachineMemory::new(4);
        let addr = PhysAddr::new(PAGE_SIZE as u64 - 4);
        mem.write(addr, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(mem.read_u64(addr).unwrap(), u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn out_of_range_access_rejected() {
        let mut mem = MachineMemory::new(2);
        let end = mem.size_bytes();
        assert!(matches!(
            mem.write(PhysAddr::new(end - 4), &[0u8; 8]),
            Err(MemError::OutOfRange { .. })
        ));
        let mut buf = [0u8; 1];
        assert!(mem.read(PhysAddr::new(end), &mut buf).is_err());
        // Address arithmetic overflow is also rejected, not wrapped.
        assert!(mem.read(PhysAddr::new(u64::MAX), &mut buf).is_err());
    }

    #[test]
    fn bad_frame_rejected() {
        let mut mem = MachineMemory::new(2);
        assert!(mem.info(Mfn::new(2)).is_err());
        assert!(mem.info_mut(Mfn::new(2)).is_err());
        assert!(mem.zero_frame(Mfn::new(99)).is_err());
        assert!(mem.info(Mfn::new(1)).is_ok());
    }

    #[test]
    fn zero_frame_clears_content() {
        let mut mem = MachineMemory::new(2);
        mem.write_u64(PhysAddr::new(0), 0x1122_3344).unwrap();
        mem.zero_frame(Mfn::new(0)).unwrap();
        assert_eq!(mem.read_u64(PhysAddr::new(0)).unwrap(), 0);
    }

    #[test]
    fn read_frame_full_copy() {
        let mut mem = MachineMemory::new(2);
        mem.write(PhysAddr::new(4096 + 7), b"frame1").unwrap();
        let mut out = [0u8; PAGE_SIZE];
        mem.read_frame(Mfn::new(1), &mut out).unwrap();
        assert_eq!(&out[7..13], b"frame1");
        mem.read_frame(Mfn::new(0), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn clone_shares_frames_until_written() {
        let mut parent = MachineMemory::new(8);
        parent.write(PhysAddr::new(0), b"parent data").unwrap();
        parent.write_u64(Mfn::new(3).base(), 0xabcd).unwrap();
        let child = parent.clone();
        let stats = child.snapshot_stats();
        assert_eq!(stats.frames_total, 8);
        assert_eq!(stats.frames_shared, 2, "both materialized frames are shared");
        assert_eq!(stats.frames_copied, 0, "nothing written through the clone yet");
        // The parent sees the same sharing; its copy counter reflects
        // only its own post-clone writes.
        assert_eq!(parent.snapshot_stats().frames_shared, 2);
    }

    #[test]
    fn cow_write_breaks_sharing_for_one_frame_only() {
        let mut parent = MachineMemory::new(8);
        parent.write(PhysAddr::new(0), b"original").unwrap();
        parent.write(Mfn::new(1).base(), b"second").unwrap();
        let mut child = parent.clone();
        child.write(PhysAddr::new(0), b"modified").unwrap();
        let mut buf = [0u8; 8];
        parent.read(PhysAddr::new(0), &mut buf).unwrap();
        assert_eq!(&buf, b"original", "the parent never sees the child's write");
        child.read(PhysAddr::new(0), &mut buf).unwrap();
        assert_eq!(&buf, b"modified");
        let stats = child.snapshot_stats();
        assert_eq!(stats.frames_copied, 1, "only the written frame was privatized");
        assert_eq!(stats.frames_shared, 1, "frame 1 is still shared");
    }

    #[test]
    fn zero_frame_fast_path_survives_cow() {
        let mut parent = MachineMemory::new(4);
        parent.write(PhysAddr::new(0), b"data").unwrap();
        let mut child = parent.clone();
        // Reading an untouched zero frame materializes nothing and
        // copies nothing, in either image.
        let mut out = [0xffu8; PAGE_SIZE];
        child.read_frame(Mfn::new(2), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(child.snapshot_stats().frames_copied, 0);
        // Writing a zero frame in the child materializes a private page
        // that is not a COW copy and stays invisible to the parent.
        child.write(Mfn::new(2).base(), b"child").unwrap();
        assert_eq!(child.snapshot_stats().frames_copied, 0);
        parent.read_frame(Mfn::new(2), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "the parent's frame is still zero");
        // zero_frame returns the child's frame to the unmaterialized
        // representation.
        child.zero_frame(Mfn::new(2)).unwrap();
        child.read_frame(Mfn::new(2), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn deep_copy_shares_nothing() {
        let mut parent = MachineMemory::new(4);
        parent.write(PhysAddr::new(0), b"data").unwrap();
        let deep = parent.deep_copy();
        assert_eq!(deep.snapshot_stats().frames_shared, 0);
        assert_eq!(parent.snapshot_stats().frames_shared, 0);
        let mut buf = [0u8; 4];
        deep.read(PhysAddr::new(0), &mut buf).unwrap();
        assert_eq!(&buf, b"data");
    }

    #[test]
    fn data_writes_never_bump_the_pt_generation() {
        let mut mem = MachineMemory::new(4);
        mem.info_mut(Mfn::new(0)).unwrap().assign(DomainId::new(1), PageType::Writable);
        let before = mem.pt_generation();
        mem.write_u64(PhysAddr::new(8), 0x4141).unwrap();
        mem.write(Mfn::new(2).base(), b"untyped frame").unwrap();
        assert_eq!(mem.pt_generation(), before, "data writes must not flush the TLB");
    }

    #[test]
    fn page_table_writes_always_bump_the_pt_generation() {
        let mut mem = MachineMemory::new(4);
        mem.info_mut(Mfn::new(1)).unwrap().assign(DomainId::new(1), PageType::L1PageTable);
        let before = mem.pt_generation();
        mem.write_u64(Mfn::new(1).base().offset(16), 0xdead).unwrap();
        assert!(mem.pt_generation() > before, "a PTE write must flush the TLB");
        let before = mem.pt_generation();
        mem.zero_frame(Mfn::new(1)).unwrap();
        assert!(mem.pt_generation() > before, "zeroing a page table must flush too");
    }

    #[test]
    fn accounting_mutation_of_a_page_table_bumps_the_generation() {
        let mut mem = MachineMemory::new(4);
        mem.info_mut(Mfn::new(1)).unwrap().assign(DomainId::new(1), PageType::L2PageTable);
        let before = mem.pt_generation();
        // A demotion (or any accounting touch) of a page-table frame
        // must invalidate cached walks through it.
        mem.info_mut(Mfn::new(1)).unwrap().set_type_unchecked(PageType::Writable);
        assert!(mem.pt_generation() > before);
        // But accounting touches on data frames stay silent.
        let before = mem.pt_generation();
        mem.info_mut(Mfn::new(2)).unwrap().assign(DomainId::new(1), PageType::Writable);
        assert_eq!(mem.pt_generation(), before);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_spans(
            offset in 0u64..(3 * PAGE_SIZE as u64),
            data in proptest::collection::vec(any::<u8>(), 1..256),
        ) {
            let mut mem = MachineMemory::new(4);
            mem.write(PhysAddr::new(offset), &data).unwrap();
            let mut out = vec![0u8; data.len()];
            mem.read(PhysAddr::new(offset), &mut out).unwrap();
            prop_assert_eq!(out, data);
        }

        #[test]
        fn prop_u64_roundtrip(offset in 0u64..(4 * PAGE_SIZE as u64 - 8), value: u64) {
            let mut mem = MachineMemory::new(4);
            mem.write_u64(PhysAddr::new(offset), value).unwrap();
            prop_assert_eq!(mem.read_u64(PhysAddr::new(offset)).unwrap(), value);
        }

        #[test]
        fn prop_disjoint_writes_do_not_interfere(
            a in 0u64..1024, b in 2048u64..4000, va: u64, vb: u64,
        ) {
            let mut mem = MachineMemory::new(4);
            mem.write_u64(PhysAddr::new(a), va).unwrap();
            mem.write_u64(PhysAddr::new(b), vb).unwrap();
            prop_assert_eq!(mem.read_u64(PhysAddr::new(a)).unwrap(), va);
            prop_assert_eq!(mem.read_u64(PhysAddr::new(b)).unwrap(), vb);
        }

        /// COW aliasing: interleaved writes on a snapshot and its parent
        /// never observe each other, regardless of order or overlap.
        #[test]
        fn prop_snapshot_and_parent_never_alias(
            ops in proptest::collection::vec(
                (any::<bool>(), 0u64..(4 * PAGE_SIZE as u64 - 8), any::<u64>()),
                1..24,
            ),
        ) {
            let mut parent = MachineMemory::new(4);
            parent.write_u64(PhysAddr::new(0), 0x5eed).unwrap();
            let mut child = parent.clone();
            // Shadow models: what each image should contain.
            let mut parent_model = std::collections::BTreeMap::new();
            let mut child_model = std::collections::BTreeMap::new();
            parent_model.insert(0u64, 0x5eedu64);
            child_model.insert(0u64, 0x5eedu64);
            for &(to_child, addr, value) in &ops {
                // Keep writes 8-byte aligned so the shadow model stays a
                // simple map of independent u64 slots.
                let addr = addr & !7;
                if to_child {
                    child.write_u64(PhysAddr::new(addr), value).unwrap();
                    child_model.insert(addr, value);
                } else {
                    parent.write_u64(PhysAddr::new(addr), value).unwrap();
                    parent_model.insert(addr, value);
                }
            }
            for (&addr, &value) in &parent_model {
                prop_assert_eq!(parent.read_u64(PhysAddr::new(addr)).unwrap(), value);
            }
            for (&addr, &value) in &child_model {
                prop_assert_eq!(child.read_u64(PhysAddr::new(addr)).unwrap(), value);
            }
        }
    }
}
