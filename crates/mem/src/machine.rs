//! The byte-accurate machine memory array.
//!
//! Frames are stored copy-on-write at **two levels**: frames (and their
//! `PageInfo` accounting) are grouped into fixed-size chunks, each chunk
//! behind an [`Arc`], and the image holds a small directory of chunk
//! pointers. Cloning a [`MachineMemory`] is one reference-count bump per
//! chunk — O(installed frames / chunk size), 32 bumps for the standard
//! 4096-frame world. The first mutation after a clone privatizes only
//! the *touched chunk* ([`Arc::make_mut`]; one pointer copy per frame in
//! that chunk), and each materialized frame is itself an
//! `Arc<[u8; PAGE_SIZE]>` shared until written, so a snapshot still
//! costs only O(touched pages) of real memory over its lifetime — the
//! behaviour a real MMU gives fork-style snapshots. Before chunking,
//! the first write after a clone copied the entire frame-pointer vector
//! (O(installed frames) per campaign cell); the `frame_privatize` bench
//! measures the difference.
//!
//! Writes also maintain the **page-table write generation**: a counter
//! bumped only when a store lands in a frame whose [`PageInfo`] type is
//! one of the page-table types (or when such a frame's accounting is
//! mutated, which covers demote-then-write sequences). The software TLB
//! in `hvsim-paging` keys its validity off this counter, so data writes
//! never flush cached translations while PTE writes always do. Batched
//! hypercalls (`mmu_update`) can defer the bump with
//! [`MachineMemory::pt_batch_begin`] / [`MachineMemory::pt_batch_end`]
//! so a whole batch of PTE stores costs one TLB invalidation instead of
//! one per entry.

use crate::{MemError, Mfn, PageInfo, PhysAddr, PAGE_SIZE};
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Frames per chunk when no explicit chunk size is configured. 128
/// frames keeps the directory for the standard 4096-frame world at 32
/// entries while capping the cost of a first-write privatization at a
/// 128-pointer copy.
pub const DEFAULT_CHUNK_FRAMES: usize = 128;

/// One machine frame's contents.
///
/// Frames start life as all-zeroes and are only materialized on first
/// write, so large simulated machines stay cheap until touched. The
/// materialized representation is shared between clones until written.
#[derive(Clone, Debug, Default)]
enum FrameData {
    /// The frame has never been written; reads see zeroes.
    #[default]
    Zero,
    /// Materialized contents, shared copy-on-write between snapshots.
    Data(Arc<[u8; PAGE_SIZE]>),
}

impl FrameData {
    fn bytes(&self) -> Option<&[u8; PAGE_SIZE]> {
        match self {
            FrameData::Zero => None,
            FrameData::Data(b) => Some(b),
        }
    }
}

/// A fixed run of frames plus their accounting, shared whole between
/// snapshots until either image mutates a frame inside it. Contents and
/// accounting live in the same chunk so one privatization covers both —
/// a PTE write needs the frame bytes *and* (via the generation check)
/// the `PageInfo`, and splitting them would double the `Arc` traffic.
#[derive(Clone, Debug)]
struct Chunk {
    frames: Vec<FrameData>,
    info: Vec<PageInfo>,
}

/// Copy-on-write accounting for one memory image, reported per campaign
/// cell so `BENCH_campaign.json` shows how much of a snapshot stayed
/// shared.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotStats {
    /// Installed frames.
    pub frames_total: u64,
    /// Materialized frames currently shared with at least one other
    /// snapshot (reference count > 1). Depends on which sibling
    /// snapshots are alive at sampling time, so it is zeroed by report
    /// normalization.
    pub frames_shared: u64,
    /// Frames this image privatized via copy-on-write since it was
    /// cloned (zero-frame materializations are not copies and are not
    /// counted).
    pub frames_copied: u64,
    /// Chunks of the frame directory this image privatized since it was
    /// cloned — each is one O(chunk) pointer copy, the unit cost the
    /// chunked directory caps first-write privatization at.
    pub chunks_privatized: u64,
}

/// All installed machine memory: frame contents plus per-frame accounting.
///
/// This is the single source of truth every other subsystem (page walks,
/// hypercalls, guests, the intrusion injector) reads and mutates.
#[derive(Debug)]
pub struct MachineMemory {
    chunks: Vec<Arc<Chunk>>,
    /// Frames per chunk; always a power of two so frame→chunk indexing
    /// is a shift and a mask.
    chunk_frames: usize,
    chunk_shift: u32,
    frames: u64,
    /// Bumped on every store to (or accounting mutation of) a
    /// page-table-typed frame; see the module docs.
    pt_gen: u64,
    /// Nesting depth of open [`Self::pt_batch_begin`] scopes. While
    /// non-zero, page-table mutations mark `pt_batch_dirty` instead of
    /// bumping `pt_gen`.
    pt_batch_depth: u32,
    /// A page-table mutation happened inside the current batch; the
    /// outermost [`Self::pt_batch_end`] folds it into one bump.
    pt_batch_dirty: bool,
    /// Copy-on-write frame breaks since this image was created or cloned.
    frames_copied: u64,
    /// Chunk privatizations since this image was created or cloned.
    chunks_privatized: u64,
}

impl Clone for MachineMemory {
    /// A copy-on-write snapshot: one reference-count bump per chunk,
    /// independent of installed memory size beyond the (small) chunk
    /// directory. Frame contents and accounting are shared until either
    /// image mutates them. The clone starts its own
    /// [`SnapshotStats::frames_copied`] / `chunks_privatized` counts at
    /// zero; the page-table write generation carries over so cached
    /// translations keyed against the parent stay comparable. Any open
    /// pt-batch scope belongs to the image being cloned, not the clone.
    fn clone(&self) -> Self {
        Self {
            chunks: self.chunks.clone(),
            chunk_frames: self.chunk_frames,
            chunk_shift: self.chunk_shift,
            frames: self.frames,
            pt_gen: self.pt_gen,
            pt_batch_depth: 0,
            pt_batch_dirty: false,
            frames_copied: 0,
            chunks_privatized: 0,
        }
    }
}

impl MachineMemory {
    /// Creates a machine with `frames` installed 4 KiB frames, all zeroed
    /// and unowned, grouped into [`DEFAULT_CHUNK_FRAMES`]-frame chunks.
    pub fn new(frames: usize) -> Self {
        Self::with_chunk_frames(frames, DEFAULT_CHUNK_FRAMES)
    }

    /// Creates a machine with an explicit copy-on-write chunk size.
    /// `chunk_frames` is rounded up to a power of two and clamped to at
    /// least 1; a chunk size of 1 degenerates to per-frame directory
    /// entries (the worst case CI uses to prove chunking is
    /// unobservable), and a chunk size ≥ `frames` reproduces the old
    /// monolithic-vector behaviour (the `frame_privatize` bench
    /// baseline).
    pub fn with_chunk_frames(frames: usize, chunk_frames: usize) -> Self {
        let chunk_frames = chunk_frames.max(1).next_power_of_two();
        let chunk_shift = chunk_frames.trailing_zeros();
        let chunks = (0..frames)
            .step_by(chunk_frames)
            .map(|start| {
                let len = chunk_frames.min(frames - start);
                Arc::new(Chunk {
                    frames: (0..len).map(|_| FrameData::Zero).collect(),
                    info: vec![PageInfo::new(); len],
                })
            })
            .collect();
        Self {
            chunks,
            chunk_frames,
            chunk_shift,
            frames: frames as u64,
            pt_gen: 0,
            pt_batch_depth: 0,
            pt_batch_dirty: false,
            frames_copied: 0,
            chunks_privatized: 0,
        }
    }

    /// Frames per copy-on-write chunk.
    pub fn chunk_frames(&self) -> usize {
        self.chunk_frames
    }

    /// Number of installed frames.
    pub fn frame_count(&self) -> u64 {
        self.frames
    }

    /// Total installed bytes.
    pub fn size_bytes(&self) -> u64 {
        self.frame_count() * PAGE_SIZE as u64
    }

    /// Returns `true` if `mfn` addresses an installed frame.
    pub fn contains(&self, mfn: Mfn) -> bool {
        mfn.raw() < self.frame_count()
    }

    fn check_frame(&self, mfn: Mfn) -> Result<usize, MemError> {
        if self.contains(mfn) {
            Ok(mfn.raw() as usize)
        } else {
            Err(MemError::BadFrame {
                mfn,
                limit: self.frame_count(),
            })
        }
    }

    /// Splits a frame index into (chunk index, offset within chunk).
    #[inline]
    fn chunk_of(&self, idx: usize) -> (usize, usize) {
        (idx >> self.chunk_shift, idx & (self.chunk_frames - 1))
    }

    /// Shared view of one frame's contents.
    #[inline]
    fn frame(&self, idx: usize) -> &FrameData {
        let (c, o) = self.chunk_of(idx);
        &self.chunks[c].frames[o]
    }

    /// Privatizes chunk `c` if it is still shared with a sibling image,
    /// counting the break; the returned chunk is exclusively owned.
    fn chunk_mut(&mut self, c: usize) -> &mut Chunk {
        if Arc::strong_count(&self.chunks[c]) > 1 {
            self.chunks_privatized += 1;
        }
        Arc::make_mut(&mut self.chunks[c])
    }

    /// The page-table write generation. Translation caches compare this
    /// against the value they last observed: unchanged means no
    /// page-table-typed frame was written (or re-accounted) since, so
    /// every cached walk is still valid.
    pub fn pt_generation(&self) -> u64 {
        self.pt_gen
    }

    /// Opens a batched-mutation scope: page-table writes inside it are
    /// folded into a single generation bump at the matching
    /// [`Self::pt_batch_end`], so an N-entry `mmu_update` costs one TLB
    /// invalidation instead of N. Scopes nest; only the outermost end
    /// bumps. Callers must not translate through the TLB between the
    /// deferred writes and the end of the scope.
    pub fn pt_batch_begin(&mut self) {
        self.pt_batch_depth += 1;
    }

    /// Closes a batched-mutation scope, applying the deferred generation
    /// bump (if any page-table frame was mutated inside it) once.
    pub fn pt_batch_end(&mut self) {
        debug_assert!(self.pt_batch_depth > 0, "pt_batch_end without begin");
        self.pt_batch_depth = self.pt_batch_depth.saturating_sub(1);
        if self.pt_batch_depth == 0 && self.pt_batch_dirty {
            self.pt_batch_dirty = false;
            self.pt_gen = self.pt_gen.wrapping_add(1);
        }
    }

    /// Bumps the page-table write generation (or defers the bump to the
    /// enclosing batch scope).
    fn bump_pt_gen(&mut self) {
        if self.pt_batch_depth > 0 {
            self.pt_batch_dirty = true;
        } else {
            self.pt_gen = self.pt_gen.wrapping_add(1);
        }
    }

    /// Bumps the page-table write generation if frame `idx` is currently
    /// typed as a page table.
    fn note_pt_mutation(&mut self, idx: usize) {
        let (c, o) = self.chunk_of(idx);
        if self.chunks[c].info[o].page_type().is_page_table() {
            self.bump_pt_gen();
        }
    }

    /// Copy-on-write accounting for this image.
    pub fn snapshot_stats(&self) -> SnapshotStats {
        // While a chunk is still shared whole (no mutation inside it
        // since the clone), every materialized frame in it is shared
        // with the sibling image even though its own refcount is
        // untouched.
        let mut frames_shared = 0u64;
        for chunk in &self.chunks {
            let chunk_shared = Arc::strong_count(chunk) > 1;
            frames_shared += chunk
                .frames
                .iter()
                .filter(|f| match f {
                    FrameData::Data(a) => chunk_shared || Arc::strong_count(a) > 1,
                    FrameData::Zero => false,
                })
                .count() as u64;
        }
        SnapshotStats {
            frames_total: self.frame_count(),
            frames_shared,
            frames_copied: self.frames_copied,
            chunks_privatized: self.chunks_privatized,
        }
    }

    /// Frames currently holding materialized (non-zero-representation)
    /// contents. Zero writes into zero frames must not grow this — the
    /// regression guard for the zero-write fast path.
    pub fn materialized_frames(&self) -> u64 {
        self.chunks
            .iter()
            .map(|c| {
                c.frames
                    .iter()
                    .filter(|f| matches!(f, FrameData::Data(_)))
                    .count() as u64
            })
            .sum()
    }

    /// A clone that materializes a private copy of every frame — the
    /// pre-COW snapshot behaviour, kept as the baseline the
    /// `snapshot_cow` bench compares reference-count cloning against.
    pub fn deep_copy(&self) -> Self {
        Self {
            chunks: self
                .chunks
                .iter()
                .map(|chunk| {
                    Arc::new(Chunk {
                        frames: chunk
                            .frames
                            .iter()
                            .map(|f| match f {
                                FrameData::Zero => FrameData::Zero,
                                FrameData::Data(b) => FrameData::Data(Arc::new(**b)),
                            })
                            .collect(),
                        info: chunk.info.clone(),
                    })
                })
                .collect(),
            chunk_frames: self.chunk_frames,
            chunk_shift: self.chunk_shift,
            frames: self.frames,
            pt_gen: self.pt_gen,
            pt_batch_depth: 0,
            pt_batch_dirty: false,
            frames_copied: 0,
            chunks_privatized: 0,
        }
    }

    /// Mutable view of one frame's bytes, materializing zero frames and
    /// breaking copy-on-write sharing as needed. The first mutation
    /// after a clone also privatizes the frame's chunk (which bumps
    /// every materialized frame's refcount in that chunk, keeping the
    /// per-frame sharing accounting intact); sibling chunks stay shared.
    fn frame_bytes_mut(&mut self, idx: usize) -> &mut [u8; PAGE_SIZE] {
        let (c, o) = self.chunk_of(idx);
        // A frame is a COW copy if its own Arc is shared, or if the
        // whole chunk is still shared (privatizing the chunk bumps every
        // materialized frame's refcount, so both cases mean a sibling
        // can still read the old contents).
        let chunk_shared = Arc::strong_count(&self.chunks[c]) > 1;
        if chunk_shared {
            self.chunks_privatized += 1;
        }
        if let FrameData::Data(arc) = &self.chunks[c].frames[o] {
            if chunk_shared || Arc::strong_count(arc) > 1 {
                self.frames_copied += 1;
            }
        }
        let slot = &mut Arc::make_mut(&mut self.chunks[c]).frames[o];
        if matches!(slot, FrameData::Zero) {
            *slot = FrameData::Data(Arc::new([0u8; PAGE_SIZE]));
        }
        match slot {
            FrameData::Data(arc) => Arc::make_mut(arc),
            FrameData::Zero => unreachable!("frame was just materialized"),
        }
    }

    /// Accounting record for a frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn info(&self, mfn: Mfn) -> Result<&PageInfo, MemError> {
        let idx = self.check_frame(mfn)?;
        let (c, o) = self.chunk_of(idx);
        Ok(&self.chunks[c].info[o])
    }

    /// Mutable accounting record for a frame.
    ///
    /// Handing out mutable accounting access to a page-table-typed frame
    /// bumps the page-table write generation: a type demotion through
    /// this handle could otherwise let later *data* writes to the frame
    /// slip past translation caches that walked through it while it was
    /// still a page table.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn info_mut(&mut self, mfn: Mfn) -> Result<&mut PageInfo, MemError> {
        let idx = self.check_frame(mfn)?;
        self.note_pt_mutation(idx);
        let (c, o) = self.chunk_of(idx);
        Ok(&mut self.chunk_mut(c).info[o])
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// The access may cross frame boundaries but not the end of installed
    /// memory.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let end = addr
            .raw()
            .checked_add(buf.len() as u64)
            .ok_or(MemError::OutOfRange { addr, len: buf.len() })?;
        if end > self.size_bytes() {
            return Err(MemError::OutOfRange { addr, len: buf.len() });
        }
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < buf.len() {
            let frame = cursor.frame();
            let off = cursor.page_offset();
            let chunk = (PAGE_SIZE - off).min(buf.len() - filled);
            match self.frame(frame.raw() as usize).bytes() {
                Some(bytes) => buf[filled..filled + chunk].copy_from_slice(&bytes[off..off + chunk]),
                None => buf[filled..filled + chunk].fill(0),
            }
            filled += chunk;
            cursor = cursor.offset(chunk as u64);
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// All-zero data landing in a still-unmaterialized zero frame is a
    /// no-op: the frame keeps its zero representation (no 4 KiB
    /// allocation, no chunk privatization) and — since the contents are
    /// bit-for-bit unchanged — no page-table generation bump, so cached
    /// walks stay valid.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) -> Result<(), MemError> {
        let end = addr
            .raw()
            .checked_add(buf.len() as u64)
            .ok_or(MemError::OutOfRange { addr, len: buf.len() })?;
        if end > self.size_bytes() {
            return Err(MemError::OutOfRange { addr, len: buf.len() });
        }
        let mut cursor = addr;
        let mut written = 0usize;
        while written < buf.len() {
            let frame = cursor.frame();
            let idx = frame.raw() as usize;
            let off = cursor.page_offset();
            let chunk = (PAGE_SIZE - off).min(buf.len() - written);
            let src = &buf[written..written + chunk];
            let zero_noop =
                matches!(self.frame(idx), FrameData::Zero) && src.iter().all(|&b| b == 0);
            if !zero_noop {
                self.note_pt_mutation(idx);
                self.frame_bytes_mut(idx)[off..off + chunk].copy_from_slice(src);
            }
            written += chunk;
            cursor = cursor.offset(chunk as u64);
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, MemError> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) -> Result<(), MemError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Zeroes an entire frame.
    ///
    /// The frame reverts to the unmaterialized zero representation, so
    /// a snapshot's untouched zero frames stay free after cloning.
    /// Zeroing a frame that is already in the zero representation is a
    /// complete no-op (no privatization, no generation bump).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn zero_frame(&mut self, mfn: Mfn) -> Result<(), MemError> {
        let idx = self.check_frame(mfn)?;
        if matches!(self.frame(idx), FrameData::Zero) {
            return Ok(());
        }
        self.note_pt_mutation(idx);
        let (c, o) = self.chunk_of(idx);
        self.chunk_mut(c).frames[o] = FrameData::Zero;
        Ok(())
    }

    /// Copies a full frame's contents into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn read_frame(&self, mfn: Mfn, out: &mut [u8; PAGE_SIZE]) -> Result<(), MemError> {
        let idx = self.check_frame(mfn)?;
        match self.frame(idx).bytes() {
            Some(bytes) => out.copy_from_slice(bytes),
            None => out.fill(0),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DomainId, PageType};
    use proptest::prelude::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let mem = MachineMemory::new(4);
        let mut buf = [0xffu8; 32];
        mem.read(PhysAddr::new(100), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn read_write_roundtrip_within_frame() {
        let mut mem = MachineMemory::new(4);
        mem.write(PhysAddr::new(16), b"hello world").unwrap();
        let mut buf = [0u8; 11];
        mem.read(PhysAddr::new(16), &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn read_write_across_frame_boundary() {
        let mut mem = MachineMemory::new(4);
        let addr = PhysAddr::new(PAGE_SIZE as u64 - 4);
        mem.write(addr, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(mem.read_u64(addr).unwrap(), u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn out_of_range_access_rejected() {
        let mut mem = MachineMemory::new(2);
        let end = mem.size_bytes();
        assert!(matches!(
            mem.write(PhysAddr::new(end - 4), &[0u8; 8]),
            Err(MemError::OutOfRange { .. })
        ));
        let mut buf = [0u8; 1];
        assert!(mem.read(PhysAddr::new(end), &mut buf).is_err());
        // Address arithmetic overflow is also rejected, not wrapped.
        assert!(mem.read(PhysAddr::new(u64::MAX), &mut buf).is_err());
    }

    #[test]
    fn bad_frame_rejected() {
        let mut mem = MachineMemory::new(2);
        assert!(mem.info(Mfn::new(2)).is_err());
        assert!(mem.info_mut(Mfn::new(2)).is_err());
        assert!(mem.zero_frame(Mfn::new(99)).is_err());
        assert!(mem.info(Mfn::new(1)).is_ok());
    }

    #[test]
    fn zero_frame_clears_content() {
        let mut mem = MachineMemory::new(2);
        mem.write_u64(PhysAddr::new(0), 0x1122_3344).unwrap();
        mem.zero_frame(Mfn::new(0)).unwrap();
        assert_eq!(mem.read_u64(PhysAddr::new(0)).unwrap(), 0);
    }

    #[test]
    fn read_frame_full_copy() {
        let mut mem = MachineMemory::new(2);
        mem.write(PhysAddr::new(4096 + 7), b"frame1").unwrap();
        let mut out = [0u8; PAGE_SIZE];
        mem.read_frame(Mfn::new(1), &mut out).unwrap();
        assert_eq!(&out[7..13], b"frame1");
        mem.read_frame(Mfn::new(0), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn clone_shares_frames_until_written() {
        let mut parent = MachineMemory::new(8);
        parent.write(PhysAddr::new(0), b"parent data").unwrap();
        parent.write_u64(Mfn::new(3).base(), 0xabcd).unwrap();
        let child = parent.clone();
        let stats = child.snapshot_stats();
        assert_eq!(stats.frames_total, 8);
        assert_eq!(stats.frames_shared, 2, "both materialized frames are shared");
        assert_eq!(stats.frames_copied, 0, "nothing written through the clone yet");
        assert_eq!(stats.chunks_privatized, 0);
        // The parent sees the same sharing; its copy counter reflects
        // only its own post-clone writes.
        assert_eq!(parent.snapshot_stats().frames_shared, 2);
    }

    #[test]
    fn cow_write_breaks_sharing_for_one_frame_only() {
        let mut parent = MachineMemory::new(8);
        parent.write(PhysAddr::new(0), b"original").unwrap();
        parent.write(Mfn::new(1).base(), b"second").unwrap();
        let mut child = parent.clone();
        child.write(PhysAddr::new(0), b"modified").unwrap();
        let mut buf = [0u8; 8];
        parent.read(PhysAddr::new(0), &mut buf).unwrap();
        assert_eq!(&buf, b"original", "the parent never sees the child's write");
        child.read(PhysAddr::new(0), &mut buf).unwrap();
        assert_eq!(&buf, b"modified");
        let stats = child.snapshot_stats();
        assert_eq!(stats.frames_copied, 1, "only the written frame was privatized");
        assert_eq!(stats.frames_shared, 1, "frame 1 is still shared");
    }

    #[test]
    fn first_write_privatizes_one_chunk_not_the_directory() {
        // 1024 frames in 64-frame chunks: a single write after a clone
        // must break exactly one chunk, leaving the other 15 shared.
        let mut parent = MachineMemory::with_chunk_frames(1024, 64);
        parent.write(Mfn::new(0).base(), b"a").unwrap();
        parent.write(Mfn::new(512).base(), b"b").unwrap();
        let mut child = parent.clone();
        child.write_u64(Mfn::new(3).base(), 7).unwrap();
        let stats = child.snapshot_stats();
        assert_eq!(stats.chunks_privatized, 1, "one O(chunk) copy, not O(frames)");
        // Frame 512's chunk was untouched, so its frame is still shared
        // through the shared chunk Arc.
        assert!(stats.frames_shared >= 1);
        // A second write into the same chunk privatizes nothing new.
        child.write_u64(Mfn::new(5).base(), 8).unwrap();
        assert_eq!(child.snapshot_stats().chunks_privatized, 1);
        // A write into a different chunk breaks exactly one more.
        child.write_u64(Mfn::new(512).base(), 9).unwrap();
        assert_eq!(child.snapshot_stats().chunks_privatized, 2);
    }

    #[test]
    fn chunk_size_one_and_oversized_chunks_behave_identically() {
        for chunk in [1usize, 2, 8, 4096] {
            let mut parent = MachineMemory::with_chunk_frames(16, chunk);
            parent.write(PhysAddr::new(0), b"seed").unwrap();
            let mut child = parent.clone();
            child.write(Mfn::new(9).base(), b"child").unwrap();
            let mut buf = [0u8; 5];
            child.read(Mfn::new(9).base(), &mut buf).unwrap();
            assert_eq!(&buf, b"child");
            let mut out = [0u8; PAGE_SIZE];
            parent.read_frame(Mfn::new(9), &mut out).unwrap();
            assert!(out.iter().all(|&b| b == 0), "chunk={chunk}: parent unaffected");
        }
    }

    #[test]
    fn zero_frame_fast_path_survives_cow() {
        let mut parent = MachineMemory::new(4);
        parent.write(PhysAddr::new(0), b"data").unwrap();
        let mut child = parent.clone();
        // Reading an untouched zero frame materializes nothing and
        // copies nothing, in either image.
        let mut out = [0xffu8; PAGE_SIZE];
        child.read_frame(Mfn::new(2), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
        assert_eq!(child.snapshot_stats().frames_copied, 0);
        // Writing a zero frame in the child materializes a private page
        // that is not a COW copy and stays invisible to the parent.
        child.write(Mfn::new(2).base(), b"child").unwrap();
        assert_eq!(child.snapshot_stats().frames_copied, 0);
        parent.read_frame(Mfn::new(2), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0), "the parent's frame is still zero");
        // zero_frame returns the child's frame to the unmaterialized
        // representation.
        child.zero_frame(Mfn::new(2)).unwrap();
        child.read_frame(Mfn::new(2), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    #[test]
    fn zero_writes_do_not_materialize_zero_frames() {
        let mut mem = MachineMemory::new(4);
        // All-zero stores into never-touched frames keep the zero
        // representation: no 4 KiB allocation for a no-op write.
        mem.write_u64(PhysAddr::new(8), 0).unwrap();
        mem.write(PhysAddr::new(100), &[0u8; 200]).unwrap();
        let span = vec![0u8; PAGE_SIZE + 64];
        mem.write(PhysAddr::new(PAGE_SIZE as u64 - 32), &span).unwrap();
        assert_eq!(mem.materialized_frames(), 0);
        // ...and a cloned image privatizes nothing for them either.
        let mut child = mem.clone();
        child.write_u64(PhysAddr::new(16), 0).unwrap();
        let stats = child.snapshot_stats();
        assert_eq!(stats.chunks_privatized, 0);
        assert_eq!(child.materialized_frames(), 0);
        // A non-zero store still materializes exactly the touched frame,
        // and zero stores into materialized frames land normally.
        child.write_u64(PhysAddr::new(8), 0x4141).unwrap();
        assert_eq!(child.materialized_frames(), 1);
        child.write_u64(PhysAddr::new(8), 0).unwrap();
        assert_eq!(child.read_u64(PhysAddr::new(8)).unwrap(), 0);
        assert_eq!(child.materialized_frames(), 1);
    }

    #[test]
    fn zero_write_into_zero_pt_frame_keeps_the_generation() {
        let mut mem = MachineMemory::new(4);
        mem.info_mut(Mfn::new(1)).unwrap().assign(DomainId::new(1), PageType::L1PageTable);
        let before = mem.pt_generation();
        // The frame is unmaterialized and the store is all zeroes: the
        // contents are bit-for-bit unchanged, so cached walks stay valid.
        mem.write_u64(Mfn::new(1).base(), 0).unwrap();
        assert_eq!(mem.pt_generation(), before);
        // Zeroing an already-zero frame is equally silent.
        mem.zero_frame(Mfn::new(1)).unwrap();
        assert_eq!(mem.pt_generation(), before);
    }

    #[test]
    fn deep_copy_shares_nothing() {
        let mut parent = MachineMemory::new(4);
        parent.write(PhysAddr::new(0), b"data").unwrap();
        let deep = parent.deep_copy();
        assert_eq!(deep.snapshot_stats().frames_shared, 0);
        assert_eq!(parent.snapshot_stats().frames_shared, 0);
        let mut buf = [0u8; 4];
        deep.read(PhysAddr::new(0), &mut buf).unwrap();
        assert_eq!(&buf, b"data");
    }

    #[test]
    fn data_writes_never_bump_the_pt_generation() {
        let mut mem = MachineMemory::new(4);
        mem.info_mut(Mfn::new(0)).unwrap().assign(DomainId::new(1), PageType::Writable);
        let before = mem.pt_generation();
        mem.write_u64(PhysAddr::new(8), 0x4141).unwrap();
        mem.write(Mfn::new(2).base(), b"untyped frame").unwrap();
        assert_eq!(mem.pt_generation(), before, "data writes must not flush the TLB");
    }

    #[test]
    fn page_table_writes_always_bump_the_pt_generation() {
        let mut mem = MachineMemory::new(4);
        mem.info_mut(Mfn::new(1)).unwrap().assign(DomainId::new(1), PageType::L1PageTable);
        let before = mem.pt_generation();
        mem.write_u64(Mfn::new(1).base().offset(16), 0xdead).unwrap();
        assert!(mem.pt_generation() > before, "a PTE write must flush the TLB");
        let before = mem.pt_generation();
        mem.zero_frame(Mfn::new(1)).unwrap();
        assert!(mem.pt_generation() > before, "zeroing a page table must flush too");
    }

    #[test]
    fn accounting_mutation_of_a_page_table_bumps_the_generation() {
        let mut mem = MachineMemory::new(4);
        mem.info_mut(Mfn::new(1)).unwrap().assign(DomainId::new(1), PageType::L2PageTable);
        let before = mem.pt_generation();
        // A demotion (or any accounting touch) of a page-table frame
        // must invalidate cached walks through it.
        mem.info_mut(Mfn::new(1)).unwrap().set_type_unchecked(PageType::Writable);
        assert!(mem.pt_generation() > before);
        // But accounting touches on data frames stay silent.
        let before = mem.pt_generation();
        mem.info_mut(Mfn::new(2)).unwrap().assign(DomainId::new(1), PageType::Writable);
        assert_eq!(mem.pt_generation(), before);
    }

    #[test]
    fn pt_batch_folds_many_bumps_into_one() {
        let mut mem = MachineMemory::new(8);
        for i in 0..4 {
            mem.info_mut(Mfn::new(i)).unwrap().assign(DomainId::new(1), PageType::L1PageTable);
        }
        let before = mem.pt_generation();
        mem.pt_batch_begin();
        for i in 0..4u64 {
            mem.write_u64(Mfn::new(i).base(), 0x1000 + i).unwrap();
            mem.write_u64(Mfn::new(i).base().offset(8), 0x2000 + i).unwrap();
            assert_eq!(mem.pt_generation(), before, "bumps are deferred inside the batch");
        }
        mem.pt_batch_end();
        assert_eq!(mem.pt_generation(), before + 1, "one bump per batch, not per store");
        // A batch that never touches a page table bumps nothing.
        let before = mem.pt_generation();
        mem.pt_batch_begin();
        mem.write_u64(Mfn::new(6).base(), 0xdada).unwrap();
        mem.pt_batch_end();
        assert_eq!(mem.pt_generation(), before);
        // Nested scopes fold into the outermost end.
        let before = mem.pt_generation();
        mem.pt_batch_begin();
        mem.pt_batch_begin();
        mem.write_u64(Mfn::new(0).base(), 0xbeef).unwrap();
        mem.pt_batch_end();
        assert_eq!(mem.pt_generation(), before, "inner end must not bump");
        mem.pt_batch_end();
        assert_eq!(mem.pt_generation(), before + 1);
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_spans(
            offset in 0u64..(3 * PAGE_SIZE as u64),
            data in proptest::collection::vec(any::<u8>(), 1..256),
        ) {
            let mut mem = MachineMemory::new(4);
            mem.write(PhysAddr::new(offset), &data).unwrap();
            let mut out = vec![0u8; data.len()];
            mem.read(PhysAddr::new(offset), &mut out).unwrap();
            prop_assert_eq!(out, data);
        }

        #[test]
        fn prop_u64_roundtrip(offset in 0u64..(4 * PAGE_SIZE as u64 - 8), value: u64) {
            let mut mem = MachineMemory::new(4);
            mem.write_u64(PhysAddr::new(offset), value).unwrap();
            prop_assert_eq!(mem.read_u64(PhysAddr::new(offset)).unwrap(), value);
        }

        #[test]
        fn prop_disjoint_writes_do_not_interfere(
            a in 0u64..1024, b in 2048u64..4000, va: u64, vb: u64,
        ) {
            let mut mem = MachineMemory::new(4);
            mem.write_u64(PhysAddr::new(a), va).unwrap();
            mem.write_u64(PhysAddr::new(b), vb).unwrap();
            prop_assert_eq!(mem.read_u64(PhysAddr::new(a)).unwrap(), va);
            prop_assert_eq!(mem.read_u64(PhysAddr::new(b)).unwrap(), vb);
        }

        /// COW aliasing: interleaved writes on a snapshot and its parent
        /// never observe each other, regardless of order or overlap.
        #[test]
        fn prop_snapshot_and_parent_never_alias(
            ops in proptest::collection::vec(
                (any::<bool>(), 0u64..(4 * PAGE_SIZE as u64 - 8), any::<u64>()),
                1..24,
            ),
        ) {
            let mut parent = MachineMemory::new(4);
            parent.write_u64(PhysAddr::new(0), 0x5eed).unwrap();
            let mut child = parent.clone();
            // Shadow models: what each image should contain.
            let mut parent_model = std::collections::BTreeMap::new();
            let mut child_model = std::collections::BTreeMap::new();
            parent_model.insert(0u64, 0x5eedu64);
            child_model.insert(0u64, 0x5eedu64);
            for &(to_child, addr, value) in &ops {
                // Keep writes 8-byte aligned so the shadow model stays a
                // simple map of independent u64 slots.
                let addr = addr & !7;
                if to_child {
                    child.write_u64(PhysAddr::new(addr), value).unwrap();
                    child_model.insert(addr, value);
                } else {
                    parent.write_u64(PhysAddr::new(addr), value).unwrap();
                    parent_model.insert(addr, value);
                }
            }
            for (&addr, &value) in &parent_model {
                prop_assert_eq!(parent.read_u64(PhysAddr::new(addr)).unwrap(), value);
            }
            for (&addr, &value) in &child_model {
                prop_assert_eq!(child.read_u64(PhysAddr::new(addr)).unwrap(), value);
            }
        }

        /// Chunked-COW equivalence: arbitrary interleavings of clones
        /// and writes, across chunk boundaries and at every chunk size,
        /// read back exactly like a flat deep-copied reference image.
        #[test]
        fn prop_chunked_cow_matches_flat_reference(
            chunk_frames in prop_oneof![Just(1usize), Just(2), Just(4), Just(64)],
            ops in proptest::collection::vec(
                // (clone source image, write target image, addr, data)
                (any::<u16>(), any::<u16>(), 0u64..(8 * PAGE_SIZE as u64 - 24),
                 proptest::collection::vec(any::<u8>(), 1..24)),
                1..32,
            ),
            interleave in proptest::collection::vec(any::<bool>(), 1..32),
        ) {
            const FRAMES: usize = 8;
            let mut images = vec![MachineMemory::with_chunk_frames(FRAMES, chunk_frames)];
            // The reference model: a plain flat byte image per snapshot,
            // deep-copied on clone — trivially correct COW semantics.
            let mut models = vec![vec![0u8; FRAMES * PAGE_SIZE]];
            for (i, (clone_src, write_tgt, addr, data)) in ops.iter().enumerate() {
                let do_clone = interleave.get(i).copied().unwrap_or(false);
                if do_clone && images.len() < 8 {
                    let src = (*clone_src as usize) % images.len();
                    images.push(images[src].clone());
                    models.push(models[src].clone());
                }
                let tgt = (*write_tgt as usize) % images.len();
                images[tgt].write(PhysAddr::new(*addr), data).unwrap();
                models[tgt][*addr as usize..*addr as usize + data.len()]
                    .copy_from_slice(data);
            }
            for (image, model) in images.iter().zip(&models) {
                let mut out = [0u8; PAGE_SIZE];
                for frame in 0..FRAMES {
                    image.read_frame(Mfn::new(frame as u64), &mut out).unwrap();
                    prop_assert_eq!(
                        &out[..], &model[frame * PAGE_SIZE..(frame + 1) * PAGE_SIZE],
                        "chunk={} image diverged from flat reference", chunk_frames
                    );
                }
            }
        }
    }
}
