//! The byte-accurate machine memory array.

use crate::{MemError, Mfn, PageInfo, PhysAddr, PAGE_SIZE};

/// One machine frame's contents.
///
/// Frames start life as all-zeroes and are only materialized on first
/// write, so large simulated machines stay cheap until touched.
#[derive(Clone, Debug, Default)]
enum FrameData {
    /// The frame has never been written; reads see zeroes.
    #[default]
    Zero,
    /// Materialized contents.
    Data(Box<[u8; PAGE_SIZE]>),
}

impl FrameData {
    fn bytes(&self) -> Option<&[u8; PAGE_SIZE]> {
        match self {
            FrameData::Zero => None,
            FrameData::Data(b) => Some(b),
        }
    }

    fn bytes_mut(&mut self) -> &mut [u8; PAGE_SIZE] {
        if let FrameData::Zero = self {
            *self = FrameData::Data(Box::new([0u8; PAGE_SIZE]));
        }
        match self {
            FrameData::Data(b) => b,
            FrameData::Zero => unreachable!("frame was just materialized"),
        }
    }
}

/// All installed machine memory: frame contents plus per-frame accounting.
///
/// This is the single source of truth every other subsystem (page walks,
/// hypercalls, guests, the intrusion injector) reads and mutates.
#[derive(Clone, Debug)]
pub struct MachineMemory {
    frames: Vec<FrameData>,
    info: Vec<PageInfo>,
}

impl MachineMemory {
    /// Creates a machine with `frames` installed 4 KiB frames, all zeroed
    /// and unowned.
    pub fn new(frames: usize) -> Self {
        Self {
            frames: (0..frames).map(|_| FrameData::Zero).collect(),
            info: vec![PageInfo::new(); frames],
        }
    }

    /// Number of installed frames.
    pub fn frame_count(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Total installed bytes.
    pub fn size_bytes(&self) -> u64 {
        self.frame_count() * PAGE_SIZE as u64
    }

    /// Returns `true` if `mfn` addresses an installed frame.
    pub fn contains(&self, mfn: Mfn) -> bool {
        mfn.raw() < self.frame_count()
    }

    fn check_frame(&self, mfn: Mfn) -> Result<usize, MemError> {
        if self.contains(mfn) {
            Ok(mfn.raw() as usize)
        } else {
            Err(MemError::BadFrame {
                mfn,
                limit: self.frame_count(),
            })
        }
    }

    /// Accounting record for a frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn info(&self, mfn: Mfn) -> Result<&PageInfo, MemError> {
        let idx = self.check_frame(mfn)?;
        Ok(&self.info[idx])
    }

    /// Mutable accounting record for a frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn info_mut(&mut self, mfn: Mfn) -> Result<&mut PageInfo, MemError> {
        let idx = self.check_frame(mfn)?;
        Ok(&mut self.info[idx])
    }

    /// Reads `buf.len()` bytes starting at `addr`.
    ///
    /// The access may cross frame boundaries but not the end of installed
    /// memory.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn read(&self, addr: PhysAddr, buf: &mut [u8]) -> Result<(), MemError> {
        let end = addr
            .raw()
            .checked_add(buf.len() as u64)
            .ok_or(MemError::OutOfRange { addr, len: buf.len() })?;
        if end > self.size_bytes() {
            return Err(MemError::OutOfRange { addr, len: buf.len() });
        }
        let mut cursor = addr;
        let mut filled = 0usize;
        while filled < buf.len() {
            let frame = cursor.frame();
            let off = cursor.page_offset();
            let chunk = (PAGE_SIZE - off).min(buf.len() - filled);
            match self.frames[frame.raw() as usize].bytes() {
                Some(bytes) => buf[filled..filled + chunk].copy_from_slice(&bytes[off..off + chunk]),
                None => buf[filled..filled + chunk].fill(0),
            }
            filled += chunk;
            cursor = cursor.offset(chunk as u64);
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn write(&mut self, addr: PhysAddr, buf: &[u8]) -> Result<(), MemError> {
        let end = addr
            .raw()
            .checked_add(buf.len() as u64)
            .ok_or(MemError::OutOfRange { addr, len: buf.len() })?;
        if end > self.size_bytes() {
            return Err(MemError::OutOfRange { addr, len: buf.len() });
        }
        let mut cursor = addr;
        let mut written = 0usize;
        while written < buf.len() {
            let frame = cursor.frame();
            let off = cursor.page_offset();
            let chunk = (PAGE_SIZE - off).min(buf.len() - written);
            self.frames[frame.raw() as usize].bytes_mut()[off..off + chunk]
                .copy_from_slice(&buf[written..written + chunk]);
            written += chunk;
            cursor = cursor.offset(chunk as u64);
        }
        Ok(())
    }

    /// Reads a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn read_u64(&self, addr: PhysAddr) -> Result<u64, MemError> {
        let mut buf = [0u8; 8];
        self.read(addr, &mut buf)?;
        Ok(u64::from_le_bytes(buf))
    }

    /// Writes a little-endian `u64` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the access crosses the end of
    /// installed memory.
    pub fn write_u64(&mut self, addr: PhysAddr, value: u64) -> Result<(), MemError> {
        self.write(addr, &value.to_le_bytes())
    }

    /// Zeroes an entire frame.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn zero_frame(&mut self, mfn: Mfn) -> Result<(), MemError> {
        let idx = self.check_frame(mfn)?;
        self.frames[idx] = FrameData::Zero;
        Ok(())
    }

    /// Copies a full frame's contents into `out`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::BadFrame`] for uninstalled frames.
    pub fn read_frame(&self, mfn: Mfn, out: &mut [u8; PAGE_SIZE]) -> Result<(), MemError> {
        let idx = self.check_frame(mfn)?;
        match self.frames[idx].bytes() {
            Some(bytes) => out.copy_from_slice(bytes),
            None => out.fill(0),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fresh_memory_reads_zero() {
        let mem = MachineMemory::new(4);
        let mut buf = [0xffu8; 32];
        mem.read(PhysAddr::new(100), &mut buf).unwrap();
        assert!(buf.iter().all(|&b| b == 0));
    }

    #[test]
    fn read_write_roundtrip_within_frame() {
        let mut mem = MachineMemory::new(4);
        mem.write(PhysAddr::new(16), b"hello world").unwrap();
        let mut buf = [0u8; 11];
        mem.read(PhysAddr::new(16), &mut buf).unwrap();
        assert_eq!(&buf, b"hello world");
    }

    #[test]
    fn read_write_across_frame_boundary() {
        let mut mem = MachineMemory::new(4);
        let addr = PhysAddr::new(PAGE_SIZE as u64 - 4);
        mem.write(addr, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        assert_eq!(mem.read_u64(addr).unwrap(), u64::from_le_bytes([1, 2, 3, 4, 5, 6, 7, 8]));
    }

    #[test]
    fn out_of_range_access_rejected() {
        let mut mem = MachineMemory::new(2);
        let end = mem.size_bytes();
        assert!(matches!(
            mem.write(PhysAddr::new(end - 4), &[0u8; 8]),
            Err(MemError::OutOfRange { .. })
        ));
        let mut buf = [0u8; 1];
        assert!(mem.read(PhysAddr::new(end), &mut buf).is_err());
        // Address arithmetic overflow is also rejected, not wrapped.
        assert!(mem.read(PhysAddr::new(u64::MAX), &mut buf).is_err());
    }

    #[test]
    fn bad_frame_rejected() {
        let mut mem = MachineMemory::new(2);
        assert!(mem.info(Mfn::new(2)).is_err());
        assert!(mem.info_mut(Mfn::new(2)).is_err());
        assert!(mem.zero_frame(Mfn::new(99)).is_err());
        assert!(mem.info(Mfn::new(1)).is_ok());
    }

    #[test]
    fn zero_frame_clears_content() {
        let mut mem = MachineMemory::new(2);
        mem.write_u64(PhysAddr::new(0), 0x1122_3344).unwrap();
        mem.zero_frame(Mfn::new(0)).unwrap();
        assert_eq!(mem.read_u64(PhysAddr::new(0)).unwrap(), 0);
    }

    #[test]
    fn read_frame_full_copy() {
        let mut mem = MachineMemory::new(2);
        mem.write(PhysAddr::new(4096 + 7), b"frame1").unwrap();
        let mut out = [0u8; PAGE_SIZE];
        mem.read_frame(Mfn::new(1), &mut out).unwrap();
        assert_eq!(&out[7..13], b"frame1");
        mem.read_frame(Mfn::new(0), &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0));
    }

    proptest! {
        #[test]
        fn prop_roundtrip_arbitrary_spans(
            offset in 0u64..(3 * PAGE_SIZE as u64),
            data in proptest::collection::vec(any::<u8>(), 1..256),
        ) {
            let mut mem = MachineMemory::new(4);
            mem.write(PhysAddr::new(offset), &data).unwrap();
            let mut out = vec![0u8; data.len()];
            mem.read(PhysAddr::new(offset), &mut out).unwrap();
            prop_assert_eq!(out, data);
        }

        #[test]
        fn prop_u64_roundtrip(offset in 0u64..(4 * PAGE_SIZE as u64 - 8), value: u64) {
            let mut mem = MachineMemory::new(4);
            mem.write_u64(PhysAddr::new(offset), value).unwrap();
            prop_assert_eq!(mem.read_u64(PhysAddr::new(offset)).unwrap(), value);
        }

        #[test]
        fn prop_disjoint_writes_do_not_interfere(
            a in 0u64..1024, b in 2048u64..4000, va: u64, vb: u64,
        ) {
            let mut mem = MachineMemory::new(4);
            mem.write_u64(PhysAddr::new(a), va).unwrap();
            mem.write_u64(PhysAddr::new(b), vb).unwrap();
            prop_assert_eq!(mem.read_u64(PhysAddr::new(a)).unwrap(), va);
            prop_assert_eq!(mem.read_u64(PhysAddr::new(b)).unwrap(), vb);
        }
    }
}
