//! Strongly-typed addresses and frame numbers.
//!
//! The simulator distinguishes the three address spaces a paravirtualized
//! hypervisor juggles:
//!
//! * **machine** addresses ([`PhysAddr`]) and frame numbers ([`Mfn`]) — real
//!   hardware memory,
//! * **pseudo-physical** frame numbers ([`Pfn`]) — the per-domain contiguous
//!   view Xen presents to PV guests via the P2M/M2P tables,
//! * **virtual** (linear) addresses ([`VirtAddr`]) — what software
//!   dereferences; translated by 4-level page tables.
//!
//! Mixing these up is precisely the class of bug several Xen XSAs are about,
//! so the newtypes are deliberately non-interchangeable (C-NEWTYPE).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Size of one machine frame / page in bytes (4 KiB).
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Mask selecting the offset-within-page bits of an address.
pub const PAGE_MASK: u64 = (PAGE_SIZE as u64) - 1;

macro_rules! frame_number {
    ($(#[$doc:meta])* $name:ident, $addr:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw frame number.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw frame number.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the address of the first byte of this frame.
            pub const fn base(self) -> $addr {
                $addr::new(self.0 << PAGE_SHIFT)
            }

            /// Returns the frame `n` frames after this one.
            pub const fn add(self, n: u64) -> Self {
                Self(self.0 + n)
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.0
            }
        }
    };
}

frame_number!(
    /// A **machine frame number**: an index into real host memory.
    ///
    /// One `Mfn` addresses one 4 KiB frame of [`crate::MachineMemory`].
    Mfn,
    PhysAddr
);

frame_number!(
    /// A **pseudo-physical frame number**: a guest's view of one of its own
    /// frames, translated to an [`Mfn`] through the domain's P2M table.
    Pfn,
    PhysAddr
);

macro_rules! address {
    ($(#[$doc:meta])* $name:ident, $frame:ident) => {
        $(#[$doc])*
        #[derive(
            Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
        )]
        pub struct $name(u64);

        impl $name {
            /// Wraps a raw 64-bit address.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// Returns the raw address value.
            pub const fn raw(self) -> u64 {
                self.0
            }

            /// Returns the frame containing this address.
            pub const fn frame(self) -> $frame {
                $frame::new(self.0 >> PAGE_SHIFT)
            }

            /// Returns the offset of this address within its frame.
            pub const fn page_offset(self) -> usize {
                (self.0 & PAGE_MASK) as usize
            }

            /// Returns the address `n` bytes after this one (wrapping).
            pub const fn offset(self, n: u64) -> Self {
                Self(self.0.wrapping_add(n))
            }

            /// Returns `true` if the address is aligned to `align` bytes.
            ///
            /// `align` must be a power of two; this is a debug-checked
            /// precondition.
            pub fn is_aligned(self, align: u64) -> bool {
                debug_assert!(align.is_power_of_two());
                self.0 & (align - 1) == 0
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!(stringify!($name), "({:#x})"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{:#018x}", self.0)
            }
        }

        impl fmt::LowerHex for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::LowerHex::fmt(&self.0, f)
            }
        }

        impl From<$name> for u64 {
            fn from(v: $name) -> u64 {
                v.0
            }
        }
    };
}

address!(
    /// A **machine (physical) address** into host memory.
    PhysAddr,
    Mfn
);

address!(
    /// A **virtual (linear) address**, translated by 4-level page tables.
    VirtAddr,
    Mfn
);

impl VirtAddr {
    /// Returns `true` if the address is canonical on x86-64 (bits 63..=48
    /// are copies of bit 47).
    ///
    /// Non-canonical addresses fault with #GP on real hardware; the
    /// simulator's page walker refuses to translate them.
    pub const fn is_canonical(self) -> bool {
        let upper = self.0 >> 47;
        upper == 0 || upper == (1 << 17) - 1
    }

    /// Sign-extends bits 47.. from bit 47, producing the canonical form of
    /// an address assembled from page-table indices.
    pub const fn canonicalize(raw: u64) -> Self {
        let low = raw & 0x0000_ffff_ffff_ffff;
        if low & (1 << 47) != 0 {
            Self(low | 0xffff_0000_0000_0000)
        } else {
            Self(low)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_and_offset_roundtrip() {
        let addr = PhysAddr::new(0x3_2abc);
        assert_eq!(addr.frame(), Mfn::new(0x32));
        assert_eq!(addr.page_offset(), 0xabc);
        assert_eq!(addr.frame().base().offset(0xabc), addr);
    }

    #[test]
    fn mfn_base_is_page_aligned() {
        assert!(Mfn::new(7).base().is_aligned(PAGE_SIZE as u64));
    }

    #[test]
    fn canonical_detection() {
        assert!(VirtAddr::new(0x0000_7fff_ffff_ffff).is_canonical());
        assert!(VirtAddr::new(0xffff_8000_0000_0000).is_canonical());
        assert!(!VirtAddr::new(0x0000_8000_0000_0000).is_canonical());
        assert!(!VirtAddr::new(0xdead_0000_0000_0000).is_canonical());
    }

    #[test]
    fn canonicalize_sign_extends() {
        let va = VirtAddr::canonicalize(0x0000_8000_0000_0000);
        assert_eq!(va.raw(), 0xffff_8000_0000_0000);
        assert!(va.is_canonical());
        let low = VirtAddr::canonicalize(0x0000_1234_5678_9abc);
        assert_eq!(low.raw(), 0x0000_1234_5678_9abc);
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(format!("{}", Mfn::new(0x1f)), "0x1f");
        assert_eq!(
            format!("{}", VirtAddr::new(0xffff_8000_0000_0000)),
            "0xffff800000000000"
        );
        assert_eq!(format!("{:x}", Pfn::new(255)), "ff");
    }

    #[test]
    fn debug_is_nonempty_and_named() {
        assert_eq!(format!("{:?}", Mfn::new(2)), "Mfn(0x2)");
        assert_eq!(format!("{:?}", PhysAddr::new(0)), "PhysAddr(0x0)");
    }

    #[test]
    fn offset_wraps() {
        let a = VirtAddr::new(u64::MAX);
        assert_eq!(a.offset(1).raw(), 0);
    }
}
