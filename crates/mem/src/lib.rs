//! Machine memory substrate for the `hvsim` paravirtualized hypervisor
//! simulator.
//!
//! This crate models the *physical* side of a virtualized host, mirroring the
//! structures the Xen hypervisor uses to multiplex machine memory between
//! domains:
//!
//! * [`MachineMemory`] — a byte-accurate array of 4 KiB machine frames with
//!   typed load/store accessors,
//! * [`PageInfo`] — per-frame accounting (owner domain, page *type*, type and
//!   general reference counts), the simulator's equivalent of Xen's
//!   `struct page_info`,
//! * [`FrameAllocator`] — a free-list allocator with per-domain accounting,
//! * strongly-typed addresses and frame numbers ([`Mfn`], [`Pfn`],
//!   [`PhysAddr`], [`VirtAddr`]).
//!
//! Everything above this crate (page-table walks, hypercalls, guests,
//! intrusion injection) manipulates memory exclusively through these types,
//! so an "erroneous state" injected by the intrusion-injection tooling is a
//! real, observable mutation of the bytes and accounting kept here.
//!
//! # Example
//!
//! ```
//! use hvsim_mem::{DomainId, MachineMemory, Mfn, PageType};
//!
//! # fn main() -> Result<(), hvsim_mem::MemError> {
//! let mut mem = MachineMemory::new(64);
//! let dom = DomainId::new(1);
//! let mfn = Mfn::new(3);
//! mem.info_mut(mfn)?.assign(dom, PageType::Writable);
//! mem.write_u64(mfn.base().offset(8), 0xdead_beef)?;
//! assert_eq!(mem.read_u64(mfn.base().offset(8))?, 0xdead_beef);
//! # Ok(())
//! # }
//! ```

mod addr;
mod alloc;
mod error;
mod machine;
mod page_info;

pub use addr::{Mfn, Pfn, PhysAddr, VirtAddr, PAGE_MASK, PAGE_SHIFT, PAGE_SIZE};
pub use alloc::FrameAllocator;
pub use error::MemError;
pub use machine::{MachineMemory, SnapshotStats, DEFAULT_CHUNK_FRAMES};
pub use page_info::{DomainId, PageInfo, PageType};
