//! Per-frame accounting: the simulator's `struct page_info`.
//!
//! Xen tracks, for every machine frame, which domain owns it, what *type*
//! the frame currently has (writable data, level-N page table, segment
//! descriptor page, ...), and two reference counts. The type system is the
//! heart of PV memory safety: a frame validated as an L2 page table must not
//! simultaneously be writable by a guest, otherwise the guest could forge
//! translations. Several of the vulnerabilities reproduced by this project
//! (XSA-148, XSA-182) are precisely failures to uphold these invariants.

use crate::MemError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of a domain (virtual machine). Domain 0 is the privileged
/// control domain, like Xen's dom0.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct DomainId(u16);

impl DomainId {
    /// The privileged control domain.
    pub const DOM0: DomainId = DomainId(0);

    /// Creates a domain id from a raw value.
    pub const fn new(raw: u16) -> Self {
        Self(raw)
    }

    /// Returns the raw id.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Returns `true` for the control domain (dom0).
    pub const fn is_dom0(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

impl fmt::Display for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dom{}", self.0)
    }
}

impl From<u16> for DomainId {
    fn from(raw: u16) -> Self {
        Self(raw)
    }
}

/// The current *type* of a machine frame, in the sense of Xen's
/// `PGT_*` page types.
///
/// A frame's type constrains how it may be referenced: page-table frames
/// must never be writable from guest context, and a frame can only change
/// type when its type count has dropped to zero.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default, Serialize, Deserialize)]
pub enum PageType {
    /// No type yet; the frame may be promoted to any type.
    #[default]
    None,
    /// Ordinary guest-writable data page.
    Writable,
    /// Level-1 page table (PTE page).
    L1PageTable,
    /// Level-2 page table (PMD page).
    L2PageTable,
    /// Level-3 page table (PUD page).
    L3PageTable,
    /// Level-4 page table (PGD / top-level page).
    L4PageTable,
    /// Segment-descriptor page (GDT/LDT/IDT backing store).
    SegDesc,
    /// Grant-table page shared with another domain.
    GrantTable,
    /// Frame owned by the hypervisor itself (Xen text/data/heap).
    Hypervisor,
}

impl PageType {
    /// Returns `true` if this type is one of the four page-table types.
    pub const fn is_page_table(self) -> bool {
        matches!(
            self,
            PageType::L1PageTable
                | PageType::L2PageTable
                | PageType::L3PageTable
                | PageType::L4PageTable
        )
    }

    /// Returns the page-table level (1..=4) for page-table types.
    pub const fn page_table_level(self) -> Option<u8> {
        match self {
            PageType::L1PageTable => Some(1),
            PageType::L2PageTable => Some(2),
            PageType::L3PageTable => Some(3),
            PageType::L4PageTable => Some(4),
            _ => None,
        }
    }

    /// Returns the page-table type for a level (1..=4).
    pub const fn from_page_table_level(level: u8) -> Option<PageType> {
        match level {
            1 => Some(PageType::L1PageTable),
            2 => Some(PageType::L2PageTable),
            3 => Some(PageType::L3PageTable),
            4 => Some(PageType::L4PageTable),
            _ => None,
        }
    }
}

impl fmt::Display for PageType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            PageType::None => "none",
            PageType::Writable => "writable",
            PageType::L1PageTable => "l1_page_table",
            PageType::L2PageTable => "l2_page_table",
            PageType::L3PageTable => "l3_page_table",
            PageType::L4PageTable => "l4_page_table",
            PageType::SegDesc => "seg_desc",
            PageType::GrantTable => "grant_table",
            PageType::Hypervisor => "hypervisor",
        };
        f.write_str(s)
    }
}

/// Accounting record for one machine frame.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageInfo {
    owner: Option<DomainId>,
    page_type: PageType,
    type_count: u32,
    ref_count: u32,
    pinned: bool,
    validated: bool,
}

impl PageInfo {
    /// A fresh, unowned, untyped frame.
    pub fn new() -> Self {
        Self::default()
    }

    /// The domain owning this frame, if any.
    pub fn owner(&self) -> Option<DomainId> {
        self.owner
    }

    /// The frame's current page type.
    pub fn page_type(&self) -> PageType {
        self.page_type
    }

    /// Number of outstanding *typed* references (e.g. page-table links).
    pub fn type_count(&self) -> u32 {
        self.type_count
    }

    /// Number of outstanding general references.
    pub fn ref_count(&self) -> u32 {
        self.ref_count
    }

    /// Whether the frame is pinned to its current type.
    pub fn pinned(&self) -> bool {
        self.pinned
    }

    /// Whether the frame's contents have passed type validation.
    pub fn validated(&self) -> bool {
        self.validated
    }

    /// Assigns the frame to `owner` with the given initial type.
    ///
    /// Resets both reference counts; used when (re-)allocating a frame.
    pub fn assign(&mut self, owner: DomainId, page_type: PageType) {
        self.owner = Some(owner);
        self.page_type = page_type;
        self.type_count = 0;
        self.ref_count = 1;
        self.pinned = false;
        self.validated = !page_type.is_page_table();
    }

    /// Releases the frame from its owner, returning it to the free pool.
    pub fn release(&mut self) {
        *self = PageInfo::new();
    }

    /// Takes a typed reference, promoting the frame to `wanted` if untyped.
    ///
    /// Mirrors Xen's `get_page_type()`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::TypeConflict`] if the frame already has a
    /// different type with outstanding references.
    pub fn get_type(&mut self, wanted: PageType) -> Result<(), MemError> {
        if self.page_type == wanted {
            self.type_count += 1;
            return Ok(());
        }
        if self.type_count == 0 && !self.pinned {
            self.page_type = wanted;
            self.type_count = 1;
            self.validated = false;
            return Ok(());
        }
        Err(MemError::TypeConflict {
            have: self.page_type,
            wanted,
        })
    }

    /// Drops a typed reference; demotes the frame to untyped when the last
    /// reference is gone (unless pinned). Mirrors Xen's `put_page_type()`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RefUnderflow`] if no typed reference is held.
    pub fn put_type(&mut self) -> Result<(), MemError> {
        if self.type_count == 0 {
            return Err(MemError::RefUnderflow);
        }
        self.type_count -= 1;
        if self.type_count == 0 && !self.pinned {
            self.page_type = PageType::None;
            self.validated = false;
        }
        Ok(())
    }

    /// Takes a general reference. Mirrors Xen's `get_page()`.
    pub fn get_ref(&mut self) {
        self.ref_count += 1;
    }

    /// Drops a general reference.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::RefUnderflow`] if no reference is held.
    pub fn put_ref(&mut self) -> Result<(), MemError> {
        if self.ref_count == 0 {
            return Err(MemError::RefUnderflow);
        }
        self.ref_count -= 1;
        Ok(())
    }

    /// Pins the frame to its current type (Xen's `MMUEXT_PIN_*`).
    pub fn pin(&mut self) {
        self.pinned = true;
    }

    /// Unpins the frame.
    pub fn unpin(&mut self) {
        self.pinned = false;
    }

    /// Marks the frame contents as having passed type validation.
    pub fn set_validated(&mut self, validated: bool) {
        self.validated = validated;
    }

    /// Overwrites the page type without any checks.
    ///
    /// This is the *unchecked* mutation used by the intrusion injector to
    /// create erroneous accounting states; normal hypervisor paths go
    /// through [`PageInfo::get_type`].
    pub fn set_type_unchecked(&mut self, page_type: PageType) {
        self.page_type = page_type;
    }

    /// Overwrites the owner without any checks (injector use only).
    pub fn set_owner_unchecked(&mut self, owner: Option<DomainId>) {
        self.owner = owner;
    }

    /// Overwrites the general reference count without any checks
    /// (injector use only; models "keep page reference" erroneous states).
    pub fn set_ref_count_unchecked(&mut self, count: u32) {
        self.ref_count = count;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_and_release() {
        let mut info = PageInfo::new();
        assert_eq!(info.owner(), None);
        info.assign(DomainId::new(3), PageType::Writable);
        assert_eq!(info.owner(), Some(DomainId::new(3)));
        assert_eq!(info.page_type(), PageType::Writable);
        assert_eq!(info.ref_count(), 1);
        assert!(info.validated());
        info.release();
        assert_eq!(info, PageInfo::new());
    }

    #[test]
    fn page_table_assignment_needs_validation() {
        let mut info = PageInfo::new();
        info.assign(DomainId::DOM0, PageType::L2PageTable);
        assert!(!info.validated());
    }

    #[test]
    fn get_type_promotes_untyped_frame() {
        let mut info = PageInfo::new();
        info.assign(DomainId::new(1), PageType::None);
        info.get_type(PageType::L1PageTable).unwrap();
        assert_eq!(info.page_type(), PageType::L1PageTable);
        assert_eq!(info.type_count(), 1);
    }

    #[test]
    fn get_type_conflict_is_rejected() {
        let mut info = PageInfo::new();
        info.assign(DomainId::new(1), PageType::None);
        info.get_type(PageType::L1PageTable).unwrap();
        let err = info.get_type(PageType::Writable).unwrap_err();
        assert!(matches!(
            err,
            MemError::TypeConflict {
                have: PageType::L1PageTable,
                wanted: PageType::Writable
            }
        ));
    }

    #[test]
    fn put_type_demotes_at_zero() {
        let mut info = PageInfo::new();
        info.assign(DomainId::new(1), PageType::None);
        info.get_type(PageType::L3PageTable).unwrap();
        info.get_type(PageType::L3PageTable).unwrap();
        info.put_type().unwrap();
        assert_eq!(info.page_type(), PageType::L3PageTable);
        info.put_type().unwrap();
        assert_eq!(info.page_type(), PageType::None);
        assert!(matches!(info.put_type(), Err(MemError::RefUnderflow)));
    }

    #[test]
    fn pinned_frame_keeps_type() {
        let mut info = PageInfo::new();
        info.assign(DomainId::new(1), PageType::None);
        info.get_type(PageType::L4PageTable).unwrap();
        info.pin();
        info.put_type().unwrap();
        assert_eq!(info.page_type(), PageType::L4PageTable);
        // And a conflicting re-type is refused even at count zero.
        assert!(info.get_type(PageType::Writable).is_err());
        info.unpin();
        info.get_type(PageType::Writable).unwrap();
    }

    #[test]
    fn ref_counting() {
        let mut info = PageInfo::new();
        info.assign(DomainId::new(1), PageType::Writable);
        info.get_ref();
        assert_eq!(info.ref_count(), 2);
        info.put_ref().unwrap();
        info.put_ref().unwrap();
        assert!(matches!(info.put_ref(), Err(MemError::RefUnderflow)));
    }

    #[test]
    fn page_table_level_roundtrip() {
        for level in 1..=4u8 {
            let ty = PageType::from_page_table_level(level).unwrap();
            assert!(ty.is_page_table());
            assert_eq!(ty.page_table_level(), Some(level));
        }
        assert_eq!(PageType::from_page_table_level(5), None);
        assert_eq!(PageType::Writable.page_table_level(), None);
    }

    #[test]
    fn domain_id_display() {
        assert_eq!(DomainId::DOM0.to_string(), "dom0");
        assert_eq!(format!("{:?}", DomainId::new(4)), "dom4");
        assert!(DomainId::DOM0.is_dom0());
        assert!(!DomainId::new(1).is_dom0());
    }
}
