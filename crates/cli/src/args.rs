//! A small dependency-free argument parser for the CLI.

use std::collections::BTreeMap;
use std::fmt;

/// Parsed command line: a subcommand plus `--key value` / `--flag`
/// options.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Parsed {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` options.
    pub options: BTreeMap<String, String>,
    /// Bare `--flag` switches.
    pub flags: Vec<String>,
    /// Positional arguments after the subcommand (e.g. `trace summary
    /// FILE`). Commands that take none reject them via
    /// [`Parsed::no_positionals`].
    pub positionals: Vec<String>,
}

/// Argument errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// Unexpected positional argument.
    UnexpectedPositional(String),
    /// A required option is absent.
    MissingOption(&'static str),
    /// An option has an unrecognized value.
    BadValue {
        /// The option name.
        option: &'static str,
        /// The offending value.
        value: String,
        /// Accepted values.
        expected: &'static str,
    },
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => f.write_str("no subcommand given (try 'help')"),
            ArgError::UnexpectedPositional(v) => write!(f, "unexpected argument '{v}'"),
            ArgError::MissingOption(k) => write!(f, "required option --{k} missing"),
            ArgError::BadValue { option, value, expected } => {
                write!(f, "--{option} got '{value}', expected one of: {expected}")
            }
        }
    }
}

impl std::error::Error for ArgError {}

/// Parses `args` (without the program name).
///
/// Arguments after the subcommand are either `--key value` pairs (a key
/// followed by another `--key` or end-of-input is treated as a flag) or
/// positionals, collected in order. Most commands take no positionals
/// and reject them with [`Parsed::no_positionals`].
///
/// # Errors
///
/// [`ArgError`] on malformed input.
pub fn parse<I, S>(args: I) -> Result<Parsed, ArgError>
where
    I: IntoIterator<Item = S>,
    S: Into<String>,
{
    let mut iter = args.into_iter().map(Into::into).peekable();
    let command = iter.next().ok_or(ArgError::MissingCommand)?;
    if command.starts_with("--") {
        return Err(ArgError::MissingCommand);
    }
    let mut parsed = Parsed {
        command,
        ..Default::default()
    };
    while let Some(arg) = iter.next() {
        let Some(key) = arg.strip_prefix("--") else {
            parsed.positionals.push(arg);
            continue;
        };
        match iter.peek() {
            Some(next) if !next.starts_with("--") => {
                let value = iter.next().expect("peeked");
                parsed.options.insert(key.to_owned(), value);
            }
            _ => parsed.flags.push(key.to_owned()),
        }
    }
    Ok(parsed)
}

impl Parsed {
    /// A required `--key value` option.
    ///
    /// # Errors
    ///
    /// [`ArgError::MissingOption`] when absent.
    pub fn require(&self, key: &'static str) -> Result<&str, ArgError> {
        self.options
            .get(key)
            .map(String::as_str)
            .ok_or(ArgError::MissingOption(key))
    }

    /// An optional `--key value` option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.options.get(key).map(String::as_str).unwrap_or(default)
    }

    /// Whether a bare `--flag` was given.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }

    /// Rejects stray positional arguments — for commands that take none.
    ///
    /// # Errors
    ///
    /// [`ArgError::UnexpectedPositional`] naming the first extra.
    pub fn no_positionals(&self) -> Result<(), ArgError> {
        match self.positionals.first() {
            None => Ok(()),
            Some(extra) => Err(ArgError::UnexpectedPositional(extra.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_command_options_and_flags() {
        let p = parse(["inject", "--use-case", "XSA-182-test", "--version", "4.13", "--json"])
            .unwrap();
        assert_eq!(p.command, "inject");
        assert_eq!(p.require("use-case").unwrap(), "XSA-182-test");
        assert_eq!(p.get_or("version", "4.6"), "4.13");
        assert!(p.has_flag("json"));
        assert!(!p.has_flag("quiet"));
    }

    #[test]
    fn missing_command() {
        assert_eq!(parse(Vec::<String>::new()).unwrap_err(), ArgError::MissingCommand);
        assert_eq!(parse(["--json"]).unwrap_err(), ArgError::MissingCommand);
    }

    #[test]
    fn positionals_collected_and_rejectable() {
        let p = parse(["trace", "summary", "t.jsonl", "--top", "5"]).unwrap();
        assert_eq!(p.positionals, vec!["summary".to_owned(), "t.jsonl".to_owned()]);
        assert_eq!(p.get_or("top", "10"), "5");
        // Commands that take no positionals reject them explicitly.
        let p = parse(["run", "extra"]).unwrap();
        assert_eq!(
            p.no_positionals().unwrap_err(),
            ArgError::UnexpectedPositional("extra".into())
        );
        assert!(parse(["campaign", "--json"]).unwrap().no_positionals().is_ok());
    }

    #[test]
    fn trailing_option_is_flag() {
        let p = parse(["campaign", "--extensions"]).unwrap();
        assert!(p.has_flag("extensions"));
    }

    #[test]
    fn required_option_errors() {
        let p = parse(["inject"]).unwrap();
        assert_eq!(p.require("use-case").unwrap_err(), ArgError::MissingOption("use-case"));
    }

    #[test]
    fn error_display() {
        let e = ArgError::BadValue {
            option: "version",
            value: "9.9".into(),
            expected: "4.6, 4.8, 4.13",
        };
        assert!(e.to_string().contains("9.9"));
    }
}
