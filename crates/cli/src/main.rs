//! `intrusion-injector` — command-line front end for the
//! intrusion-injection assessment tooling.
//!
//! ```text
//! intrusion-injector campaign [--extensions] [--json] [--jobs 4] [--trace-out t.jsonl]
//! intrusion-injector campaign --stream --checkpoint c.journal [--chaos-seed 7]
//! intrusion-injector campaign --progress --flight-out dumps/ --timeline-out tl.jsonl
//! intrusion-injector campaign resume c.journal
//! intrusion-injector run --use-case XSA-182-test --version 4.13 --mode injection
//! intrusion-injector randomized --region idt --trials 24 --seed 7 --version 4.8
//! intrusion-injector benchmark [--jobs 4]
//! intrusion-injector trace summary t.jsonl --top 10
//! intrusion-injector trace validate t.jsonl
//! intrusion-injector report diff before.json after.json
//! intrusion-injector taxonomy
//! intrusion-injector models
//! intrusion-injector help
//! ```

mod args;

use args::{ArgError, Parsed};
use hvsim_obs::{
    flight, parse_jsonl, parse_line, to_jsonl, FlightEvent, MetricsRegistry, MetricsTimeline,
    ParseError, TraceSummary, Tracer,
};
use intrusion_core::campaign::standard_world;
use intrusion_core::{
    read_header, standard_world_factory, ArbitraryAccessInjector, Campaign, CampaignReport,
    ChaosConfig, Mode,
    RandomizedCampaign, RandomizedSummary, SecurityBenchmark, Shard, StreamReport, TargetRegion,
    UseCase,
};
use hvsim::XenVersion;
use serde::Value;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Duration;
use xsa_exploits::{extension_use_cases, paper_use_cases};

const HELP: &str = "\
intrusion-injector — intrusion injection for virtualized systems (DSN 2023)

USAGE:
    intrusion-injector <command> [options]

COMMANDS:
    campaign     run the full assessment campaign and print Tables II/III + Fig. 4
                   [--extensions]  include the extension use cases
                   [--json]        emit the raw cell report as JSON
                   [--jobs <n>]    worker threads (default: hardware threads)
                   [--cell-deadline-ms <n>]  per-cell watchdog deadline (default: none)
                   [--retries <n>] extra boot attempts for transient failures (default 0)
                   [--trace-out <file>]    write the structured trace as JSONL
                   [--metrics-out <file>]  write the metrics snapshot as JSON
                   [--no-tlb]      disable the software TLB (escape hatch; reports
                                   are byte-identical either way, only slower)
                   [--chunk-frames <n>]  COW chunk-directory granularity in
                                   frames (escape hatch; rounded up to a power
                                   of two, reports are byte-identical at any
                                   size)
                   [--stream]      bounded-memory streaming engine: per-key summary
                                   instead of per-cell tables, O(workers + queue)
                                   resident memory, mergeable reports
                   [--queue-depth <n>]  work-queue capacity for --stream
                   [--shard <i/n>] run only slots i, i+n, i+2n, ... of the grid;
                                   merging the n shard reports ('report merge')
                                   reproduces the unsharded report byte-for-byte
                   [--trials <n>]  trials per (use case, version, mode) cell
                   [--report-out <file>]   with --stream: write the normalized
                                   mergeable report as JSON
                   [--checkpoint <file>]   journal durable progress so a killed
                                   run can 'campaign resume <file>' (implies
                                   --stream); resumed runs produce the same
                                   normalized report byte-for-byte
                   [--checkpoint-interval <n>]  slots per durable fold record
                                   (default 1024)
                   [--journal-slots]  with --checkpoint: also stream per-cell
                                   forensic records to <file>.slots (never
                                   synced, never read by recovery)
                   [--chaos-seed <n>]  deterministic fault injection: seeded
                                   worker panics, transient boots, slowdowns,
                                   queue stalls, torn journal writes (implies
                                   --stream; same seed => same faults at any
                                   --jobs count)
                   [--progress]    live progress line on stderr (done/total,
                                   cells/s, ETA, degraded count)
                   [--flight-out <dir>]    write the flight-recorder forensic
                                   tail of every degraded cell as
                                   <dir>/slot-<n>.jsonl (plus
                                   stall-worker-<n>.jsonl for wedged workers);
                                   dumps are trace-schema JSONL
                   [--flight-capacity <n>]  per-worker flight-recorder ring
                                   size (default 256; 0 disables the recorder)
                   [--timeline-out <file>]  write the sampled metrics timeline
                                   (counters + gauges per tick) as JSONL
                   [--metrics-interval-ms <n>]  telemetry sampling interval
                                   (default 200 when a telemetry output is on)
                 resume <file>   resume a checkpointed campaign from its
                                   journal; grid shape, trials and shard are
                                   restored from the journal header
    report       operate on streamed campaign reports
                   merge <out> <in>...   merge shard reports written by
                                         'campaign --stream --report-out'
                   diff <a> <b>          compare two JSON reports or metrics
                                         snapshots leaf-by-leaf; exit 0 when
                                         identical, 1 when they differ
    run          run one use case once
                   --use-case <name>      e.g. XSA-212-crash (see 'models')
                   [--version <v>]        4.6 | 4.8 | 4.13   (default 4.6)
                   [--mode <m>]           exploit | injection (default injection)
    randomized   fuzz-style randomized injection sweep
                   [--region <r>]   idt | l3 | pagetables | frames (default idt)
                   [--trials <n>]   default 16
                   [--seed <n>]     default 7
                   [--version <v>]  default 4.8
                   [--jobs <n>]     worker threads (default: hardware threads)
                   [--retries <n>]  retry budget for boots and panicking trials (default 0)
    benchmark    score and rank versions by erroneous-state handling
                   [--jobs <n>]    worker threads (default: hardware threads)
                   [--cell-deadline-ms <n>]  per-cell watchdog deadline (default: none)
                   [--retries <n>] extra boot attempts for transient failures (default 0)
                   [--trace-out <file>]    write the structured trace as JSONL
                   [--metrics-out <file>]  write the metrics snapshot as JSON
                   [--no-tlb]      disable the software TLB (escape hatch)
    trace        inspect a JSONL trace written by --trace-out
                   summary <file>   per-phase self-time profile + slowest cells
                                    [--top <n>]  slowest cells to list (default 10)
                   validate <file>  check every line against the event schema;
                                    reports every malformed line with its line
                                    number and exits nonzero
    taxonomy     print the abusive-functionality study (Table I)
    models       list the available use cases and their intrusion models
    help         this text

EXIT CODES:
    0  clean run, no security violations observed
    1  the assessment observed at least one security violation (that is
       the expected result of the paper's campaigns)
    2  harness degradation (a cell crashed / timed out / failed to boot)
       or a CLI error
";

/// What the process should report via its exit code.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum CliOutcome {
    /// Exit 0: nothing violated, nothing degraded.
    Clean,
    /// Exit 1: the assessment observed security violations.
    Violations,
    /// Exit 2: the harness degraded (crash / deadline / boot failure).
    Degraded,
}

impl CliOutcome {
    fn exit_code(self) -> ExitCode {
        match self {
            CliOutcome::Clean => ExitCode::SUCCESS,
            CliOutcome::Violations => ExitCode::from(1),
            CliOutcome::Degraded => ExitCode::from(2),
        }
    }

    /// Degradation dominates violations; violations dominate clean.
    fn for_report(report: &CampaignReport) -> Self {
        if report.is_degraded() {
            CliOutcome::Degraded
        } else if report.has_violations() {
            CliOutcome::Violations
        } else {
            CliOutcome::Clean
        }
    }

    /// Same dominance order for a streamed report.
    fn for_stream(report: &StreamReport) -> Self {
        if report.is_degraded() {
            CliOutcome::Degraded
        } else if report.has_violations() {
            CliOutcome::Violations
        } else {
            CliOutcome::Clean
        }
    }

    fn for_summary(summary: &RandomizedSummary) -> Self {
        if summary.degraded > 0 {
            CliOutcome::Degraded
        } else if summary.crashes > 0 || summary.violated > 0 {
            CliOutcome::Violations
        } else {
            CliOutcome::Clean
        }
    }
}

fn parse_version(p: &Parsed) -> Result<XenVersion, ArgError> {
    parse_version_or(p, "4.6")
}

fn parse_version_or(p: &Parsed, default: &'static str) -> Result<XenVersion, ArgError> {
    match p.get_or("version", default) {
        "4.6" => Ok(XenVersion::V4_6),
        "4.8" => Ok(XenVersion::V4_8),
        "4.13" => Ok(XenVersion::V4_13),
        other => Err(ArgError::BadValue {
            option: "version",
            value: other.to_owned(),
            expected: "4.6, 4.8, 4.13",
        }),
    }
}

/// Parses `--jobs`; `0` (the default) lets the campaign pick one worker
/// per hardware thread.
fn parse_jobs(p: &Parsed) -> Result<usize, String> {
    p.get_or("jobs", "0")
        .parse()
        .map_err(|_| "--jobs must be a number".to_owned())
}

/// Parses `--retries` (extra attempts for transient boot failures).
fn parse_retries(p: &Parsed) -> Result<u32, String> {
    p.get_or("retries", "0")
        .parse()
        .map_err(|_| "--retries must be a number".to_owned())
}

/// Parses `--cell-deadline-ms` into the optional watchdog deadline.
fn parse_cell_deadline(p: &Parsed) -> Result<Option<Duration>, String> {
    match p.get_or("cell-deadline-ms", "0").parse::<u64>() {
        Ok(0) => Ok(None),
        Ok(ms) => Ok(Some(Duration::from_millis(ms))),
        Err(_) => Err("--cell-deadline-ms must be a number".to_owned()),
    }
}

/// Applies the shared fault-containment and grid options to a campaign.
fn configure_campaign(mut campaign: Campaign, p: &Parsed) -> Result<Campaign, String> {
    campaign = campaign.jobs(parse_jobs(p)?).retries(parse_retries(p)?);
    if let Some(deadline) = parse_cell_deadline(p)? {
        campaign = campaign.cell_deadline(deadline);
    }
    if p.has_flag("no-tlb") {
        campaign = campaign.use_tlb(false);
    }
    if let Some(raw) = p.options.get("chunk-frames") {
        let chunk: usize = raw
            .parse()
            .ok()
            .filter(|&c| c > 0)
            .ok_or("--chunk-frames must be a positive number".to_owned())?;
        campaign = campaign.world_factory(standard_world_factory(Some(chunk)));
    }
    let trials: u64 =
        p.get_or("trials", "1").parse().map_err(|_| "--trials must be a number".to_owned())?;
    campaign = campaign.trials(trials);
    if let Some(raw) = p.options.get("queue-depth") {
        let depth: usize =
            raw.parse().map_err(|_| "--queue-depth must be a number".to_owned())?;
        campaign = campaign.queue_depth(depth);
    }
    if let Some(raw) = p.options.get("shard") {
        campaign = campaign.shard(Shard::parse(raw).map_err(|e| format!("--shard: {e}"))?);
    }
    if let Some(raw) = p.options.get("checkpoint-interval") {
        let interval: u64 =
            raw.parse().map_err(|_| "--checkpoint-interval must be a number".to_owned())?;
        campaign = campaign.checkpoint_interval(interval);
    }
    if p.has_flag("journal-slots") {
        campaign = campaign.journal_slots(true);
    }
    if let Some(raw) = p.options.get("chaos-seed") {
        let seed: u64 =
            raw.parse().map_err(|_| "--chaos-seed must be a number".to_owned())?;
        campaign = campaign.chaos(ChaosConfig::standard(seed));
    }
    if let Some(raw) = p.options.get("flight-capacity") {
        let capacity: usize =
            raw.parse().map_err(|_| "--flight-capacity must be a number".to_owned())?;
        campaign = campaign.flight_capacity(capacity);
    }
    if let Some(dir) = p.options.get("flight-out") {
        campaign = campaign.flight_out(PathBuf::from(dir));
    }
    if let Some(raw) = p.options.get("metrics-interval-ms") {
        let ms: u64 = raw
            .parse()
            .ok()
            .filter(|&ms| ms > 0)
            .ok_or("--metrics-interval-ms must be a positive number".to_owned())?;
        campaign = campaign.metrics_interval(Duration::from_millis(ms));
    }
    if p.has_flag("progress") {
        campaign = campaign.progress(true);
    }
    Ok(campaign)
}

/// The observability hooks a campaign command may attach via
/// `--trace-out` / `--metrics-out` / `--timeline-out`. The tracer stays
/// disabled (a no-op) unless a trace file was requested; the timeline is
/// only sampled when a telemetry output asked for it.
struct ObsHooks {
    tracer: Tracer,
    registry: MetricsRegistry,
    timeline: Option<MetricsTimeline>,
}

fn attach_obs(campaign: Campaign, p: &Parsed) -> (Campaign, ObsHooks) {
    let tracer =
        if p.options.contains_key("trace-out") { Tracer::enabled() } else { Tracer::disabled() };
    let registry = MetricsRegistry::new();
    let mut campaign = campaign.tracer(tracer.clone()).metrics(registry.clone());
    let timeline = (p.options.contains_key("timeline-out")
        || p.options.contains_key("metrics-interval-ms"))
    .then(MetricsTimeline::new);
    if let Some(timeline) = &timeline {
        campaign = campaign.timeline(timeline.clone());
    }
    (campaign, ObsHooks { tracer, registry, timeline })
}

/// Writes the requested trace / metrics / timeline files after a
/// campaign ran.
fn write_obs_outputs(p: &Parsed, hooks: &ObsHooks) -> Result<(), String> {
    if let Some(path) = p.options.get("trace-out") {
        let events = hooks.tracer.drain();
        std::fs::write(path, to_jsonl(&events))
            .map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("wrote {} trace events to {path}", events.len());
    }
    if let Some(path) = p.options.get("metrics-out") {
        let snapshot = serde_json::to_string_pretty(&hooks.registry.snapshot())
            .map_err(|e| e.to_string())?;
        std::fs::write(path, snapshot).map_err(|e| format!("could not write {path}: {e}"))?;
        eprintln!("wrote metrics snapshot to {path}");
    }
    if let Some(path) = p.options.get("timeline-out") {
        if let Some(timeline) = &hooks.timeline {
            std::fs::write(path, timeline.to_jsonl())
                .map_err(|e| format!("could not write {path}: {e}"))?;
            eprintln!("wrote {} timeline samples to {path}", timeline.len());
        }
    }
    Ok(())
}

/// Writes one `slot-<n>.jsonl` forensic dump per degraded cell into the
/// `--flight-out` directory (stall dumps land there too, written live by
/// the telemetry supervisor as `stall-worker-<n>.jsonl`).
fn write_flight_dumps<'a>(
    p: &Parsed,
    tails: impl Iterator<Item = (u64, &'a [FlightEvent])>,
) -> Result<(), String> {
    let Some(dir) = p.options.get("flight-out") else {
        return Ok(());
    };
    let dir = Path::new(dir);
    std::fs::create_dir_all(dir)
        .map_err(|e| format!("could not create {}: {e}", dir.display()))?;
    let mut written = 0usize;
    for (slot, tail) in tails {
        if tail.is_empty() {
            continue;
        }
        let path = dir.join(format!("slot-{slot}.jsonl"));
        std::fs::write(&path, flight::dump_jsonl(tail))
            .map_err(|e| format!("could not write {}: {e}", path.display()))?;
        written += 1;
    }
    eprintln!("wrote {written} flight dump(s) to {}", dir.display());
    Ok(())
}

fn all_use_cases() -> Vec<Box<dyn UseCase>> {
    paper_use_cases().into_iter().chain(extension_use_cases()).collect()
}

fn find_use_case(name: &str) -> Option<Box<dyn UseCase>> {
    all_use_cases().into_iter().find(|uc| uc.name().eq_ignore_ascii_case(name))
}

fn cmd_campaign(p: &Parsed) -> Result<CliOutcome, String> {
    // `campaign resume <journal>` is the only positional form.
    let resume_path = match p.positionals.first().map(String::as_str) {
        None => None,
        Some("resume") => {
            let path =
                p.positionals.get(1).ok_or("campaign resume needs a journal path")?.clone();
            if let Some(extra) = p.positionals.get(2) {
                return Err(format!("unexpected argument '{extra}'"));
            }
            Some(path)
        }
        Some(other) => return Err(format!("unexpected argument '{other}'")),
    };
    let resume_header = resume_path
        .as_deref()
        .map(|path| read_header(Path::new(path)).map_err(|e| e.to_string()))
        .transpose()?;
    let mut campaign = configure_campaign(Campaign::new(), p)?;
    // On resume the journal header is authoritative for the grid shape:
    // restore extensions, trials, and shard from it so the resumed grid
    // matches (resume still verifies the full fingerprint and refuses a
    // journal from a different campaign).
    let want_extensions = p.has_flag("extensions")
        || resume_header
            .as_ref()
            .is_some_and(|h| h.grid.use_cases.len() > paper_use_cases().len());
    for uc in paper_use_cases() {
        campaign = campaign.with_use_case(uc);
    }
    if want_extensions {
        for uc in extension_use_cases() {
            campaign = campaign.with_use_case(uc);
        }
    }
    if let Some(header) = &resume_header {
        campaign = campaign.trials(header.grid.trials);
        if let Some(shard) = header.shard {
            campaign = campaign.shard(shard);
        }
    }
    let (campaign, hooks) = attach_obs(campaign, p);
    let streaming = p.has_flag("stream")
        || resume_path.is_some()
        || p.options.contains_key("checkpoint")
        || p.options.contains_key("chaos-seed");
    if streaming {
        let outcome = if let Some(path) = &resume_path {
            eprintln!("resuming the campaign from {path} ...");
            campaign.resume(Path::new(path)).map_err(|e| e.to_string())?
        } else if let Some(path) = p.options.get("checkpoint") {
            eprintln!("streaming the campaign (journal: {path}) ...");
            campaign.run_streaming_checkpointed(Path::new(path)).map_err(|e| e.to_string())?
        } else {
            eprintln!("streaming the campaign ...");
            campaign.run_streaming()
        };
        write_obs_outputs(p, &hooks)?;
        write_flight_dumps(
            p,
            outcome
                .report
                .degraded_slots
                .iter()
                .map(|(&slot, degraded)| (slot, degraded.flight.as_slice())),
        )?;
        if let Some(path) = p.options.get("report-out") {
            let json = outcome.report.normalized().to_json().map_err(|e| e.to_string())?;
            std::fs::write(path, json).map_err(|e| format!("could not write {path}: {e}"))?;
            eprintln!("wrote normalized stream report to {path}");
        }
        let exit = CliOutcome::for_stream(&outcome.report);
        if p.has_flag("json") {
            println!("{}", outcome.report.to_json().map_err(|e| e.to_string())?);
            return Ok(exit);
        }
        println!("{}", outcome.report.render_keys());
        let s = outcome.stats;
        println!(
            "pipeline: {} workers, queue depth {}, {:.0} cells/sec, peak resident {} cells",
            s.workers, s.queue_depth, s.cells_per_sec, s.peak_resident_cells,
        );
        println!(
            "stalls: generator {} us, workers {} us; merge {} us, base-world wait {} us",
            s.queue_stall_us, s.worker_stall_us, s.merge_us, s.base_world_wait_us,
        );
        if outcome.report.degraded > 0 {
            eprintln!(
                "warning: {} cell(s) degraded (crash / deadline / boot failure)",
                outcome.report.degraded
            );
        }
        return Ok(exit);
    }
    eprintln!("running the campaign ...");
    let report = campaign.run();
    write_obs_outputs(p, &hooks)?;
    // A classic cell does not carry its slot, but every event in its
    // forensic tail does.
    write_flight_dumps(
        p,
        report
            .cells()
            .iter()
            .filter_map(|cell| Some((cell.flight.first()?.slot, cell.flight.as_slice()))),
    )?;
    let outcome = CliOutcome::for_report(&report);
    if p.has_flag("json") {
        println!("{}", report.to_json().map_err(|e| e.to_string())?);
        return Ok(outcome);
    }
    println!("{}", report.render_table2());
    println!("{}", report.render_fig4());
    println!("{}", report.render_table3());
    let degraded = report.degraded_cells().count();
    if degraded > 0 {
        eprintln!("warning: {degraded} cell(s) degraded (crash / deadline / boot failure):");
        for cell in report.degraded_cells() {
            let error =
                cell.error.as_ref().map_or_else(|| "unknown".to_owned(), ToString::to_string);
            eprintln!("  ! {} / Xen {} / {}: {error}", cell.use_case, cell.version, cell.mode);
        }
    }
    Ok(outcome)
}

fn cmd_run(p: &Parsed) -> Result<CliOutcome, String> {
    let name = p.require("use-case").map_err(|e| e.to_string())?;
    let uc = find_use_case(name).ok_or_else(|| {
        format!("unknown use case '{name}' (see 'intrusion-injector models')")
    })?;
    let version = parse_version(p).map_err(|e| e.to_string())?;
    let mode = match p.get_or("mode", "injection") {
        "exploit" => Mode::Exploit,
        "injection" => Mode::Injection,
        other => return Err(format!("--mode got '{other}', expected exploit|injection")),
    };
    let mut world = standard_world(version, mode == Mode::Injection)
        .map_err(|e| format!("world failed to boot: {e}"))?;
    let attacker = world
        .domain_by_name("guest03")
        .ok_or_else(|| "standard world has no attacker guest".to_owned())?;
    println!("{} / Xen {version} / {mode}", uc.name());
    println!("intrusion model: {}", uc.intrusion_model());
    let outcome = match mode {
        Mode::Exploit => uc.run_exploit(&mut world, attacker),
        Mode::Injection => uc.run_injection(&mut world, attacker, &ArbitraryAccessInjector),
    };
    for note in &outcome.notes {
        println!("  | {note}");
    }
    println!("erroneous state: {}", outcome.erroneous_state);
    if let Some(audit) = &outcome.state_audit {
        println!("audit evidence:  {}", audit.evidence);
    }
    if let Some(err) = &outcome.error {
        println!("failure:         {err}");
    }
    let observation = uc.monitor(&world, attacker).observe(&world);
    if observation.is_clean() {
        println!("security violations: none (state handled)");
        Ok(CliOutcome::Clean)
    } else {
        println!("security violations:");
        for v in &observation.violations {
            println!("  ! {v}");
        }
        Ok(CliOutcome::Violations)
    }
}

fn cmd_randomized(p: &Parsed) -> Result<CliOutcome, String> {
    let region = match p.get_or("region", "idt") {
        "idt" => TargetRegion::IdtGates { cpu: 0 },
        "l3" => TargetRegion::SharedL3,
        "pagetables" => TargetRegion::DomainPageTables,
        "frames" => TargetRegion::DomainFrames,
        other => return Err(format!("--region got '{other}', expected idt|l3|pagetables|frames")),
    };
    let trials: usize = p.get_or("trials", "16").parse().map_err(|_| "--trials must be a number")?;
    let seed: u64 = p.get_or("seed", "7").parse().map_err(|_| "--seed must be a number")?;
    // The randomized sweep targets a non-vulnerable version by default
    // (the HELP text's documented 4.8), unlike `run`'s 4.6.
    let version = parse_version_or(p, "4.8").map_err(|e| e.to_string())?;
    let campaign = RandomizedCampaign::new(region, trials, seed)
        .with_jobs(parse_jobs(p)?)
        .retries(parse_retries(p)?);
    eprintln!("running {trials} trials against {} on Xen {version} ...", region.label());
    let (summary, outcomes) = campaign
        .run(|| {
            let w = standard_world(version, true)?;
            let a = w
                .domain_by_name("guest03")
                .ok_or_else(|| guestos::BootError::new("find attacker", "no guest03"))?;
            Ok((w, a))
        })
        .map_err(|e| e.to_string())?;
    println!("{summary}");
    for (i, o) in outcomes.iter().enumerate() {
        match &o.error {
            Some(error) => println!("  trial {i:>3}: degraded: {error}"),
            None => println!(
                "  trial {i:>3}: {} injected={} crashed={} violations={}",
                o.spec, o.injected, o.crashed, o.violations
            ),
        }
    }
    Ok(CliOutcome::for_summary(&summary))
}

fn cmd_benchmark(p: &Parsed) -> Result<CliOutcome, String> {
    let mut campaign = configure_campaign(Campaign::new(), p)?;
    for uc in all_use_cases() {
        campaign = campaign.with_use_case(uc);
    }
    let (campaign, hooks) = attach_obs(campaign, p);
    eprintln!("running the extended campaign ...");
    let report = campaign.run();
    write_obs_outputs(p, &hooks)?;
    let benchmark = SecurityBenchmark::from_report(&report);
    println!("{}", benchmark.render());
    for (i, (version, score)) in benchmark.ranking().iter().enumerate() {
        println!("  {}. Xen {version}  score {score:.2}", i + 1);
    }
    Ok(CliOutcome::for_report(&report))
}

fn cmd_trace(p: &Parsed) -> Result<CliOutcome, String> {
    let action = p
        .positionals
        .first()
        .ok_or("trace needs an action: trace summary <file> | trace validate <file>")?;
    let path = p
        .positionals
        .get(1)
        .ok_or_else(|| format!("trace {action} needs a file path"))?;
    if let Some(extra) = p.positionals.get(2) {
        return Err(format!("unexpected argument '{extra}'"));
    }
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
    match action.as_str() {
        "validate" => {
            // Validate every line, not just up to the first error: a
            // corrupted trace usually has several bad lines and fixing
            // them one resubmission at a time is miserable.
            let mut events = 0usize;
            let mut errors: Vec<ParseError> = Vec::new();
            for (i, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match parse_line(line) {
                    Ok(_) => events += 1,
                    Err(e) => errors.push(ParseError { line: i + 1, ..e }),
                }
            }
            if errors.is_empty() {
                println!("{path}: {events} events, every line schema-valid");
                return Ok(CliOutcome::Clean);
            }
            for e in &errors {
                eprintln!("{path}:{}: {}", e.line, e.message);
            }
            Err(format!(
                "{path}: {} invalid line(s) out of {}",
                errors.len(),
                errors.len() + events
            ))
        }
        "summary" => {
            let top: usize =
                p.get_or("top", "10").parse().map_err(|_| "--top must be a number")?;
            let events = parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))?;
            print!("{}", TraceSummary::compute(&events).render(top));
            Ok(CliOutcome::Clean)
        }
        other => Err(format!("unknown trace action '{other}' (expected summary|validate)")),
    }
}

/// `report merge <out> <in>...` — merge streamed (shard) reports into
/// one. Merging normalized shard reports reproduces the normalized
/// unsharded report byte-for-byte; merging raw reports sums the raw
/// wall-clock aggregates instead.
fn cmd_report(p: &Parsed) -> Result<CliOutcome, String> {
    let action = p
        .positionals
        .first()
        .ok_or("report needs an action: report merge <out> <in>... | report diff <a> <b>")?;
    match action.as_str() {
        "merge" => cmd_report_merge(p),
        "diff" => cmd_report_diff(p),
        other => Err(format!("unknown report action '{other}' (expected merge|diff)")),
    }
}

fn cmd_report_merge(p: &Parsed) -> Result<CliOutcome, String> {
    let out = p.positionals.get(1).ok_or("report merge needs an output path")?;
    let inputs = &p.positionals[2..];
    if inputs.is_empty() {
        return Err("report merge needs at least one input report".to_owned());
    }
    let mut merged = StreamReport::default();
    for path in inputs {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
        let report = StreamReport::from_json(&text).map_err(|e| format!("{path}: {e}"))?;
        // Refuse loudly instead of silently double-counting: reports
        // from different grids or overlapping shards never merge.
        merged = merged.try_merge(&report).map_err(|e| format!("{path}: {e}"))?;
    }
    let json = merged.to_json().map_err(|e| e.to_string())?;
    std::fs::write(out, json).map_err(|e| format!("could not write {out}: {e}"))?;
    eprintln!("merged {} report(s) into {out} ({} cells)", inputs.len(), merged.cells);
    Ok(CliOutcome::Clean)
}

/// Flattens a JSON document into dotted-path leaves (`a.b[2].c`), the
/// unit `report diff` compares.
fn flatten_json(prefix: &str, v: &Value, out: &mut BTreeMap<String, Value>) {
    match v {
        Value::Map(entries) => {
            for (key, value) in entries {
                let path =
                    if prefix.is_empty() { key.clone() } else { format!("{prefix}.{key}") };
                flatten_json(&path, value, out);
            }
        }
        Value::Seq(items) => {
            for (i, value) in items.iter().enumerate() {
                flatten_json(&format!("{prefix}[{i}]"), value, out);
            }
        }
        leaf => {
            out.insert(prefix.to_owned(), leaf.clone());
        }
    }
}

fn render_leaf(v: &Value) -> String {
    match v {
        Value::Null => "null".to_owned(),
        Value::Bool(b) => b.to_string(),
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(f) => f.to_string(),
        Value::Str(s) => format!("{s:?}"),
        Value::Seq(_) | Value::Map(_) => "<composite>".to_owned(),
    }
}

fn as_number(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

/// `report diff <a> <b>` — leaf-by-leaf comparison of two JSON
/// documents (campaign reports, metrics snapshots, benchmark files).
/// Numeric leaves get a signed delta. Exits 0 when identical, 1 when
/// the documents differ.
fn cmd_report_diff(p: &Parsed) -> Result<CliOutcome, String> {
    let a_path = p.positionals.get(1).ok_or("report diff needs two paths: diff <a> <b>")?;
    let b_path = p.positionals.get(2).ok_or("report diff needs two paths: diff <a> <b>")?;
    if let Some(extra) = p.positionals.get(3) {
        return Err(format!("unexpected argument '{extra}'"));
    }
    let load = |path: &str| -> Result<BTreeMap<String, Value>, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("could not read {path}: {e}"))?;
        let doc: Value =
            serde_json::from_str(&text).map_err(|e| format!("{path}: not JSON: {e}"))?;
        let mut leaves = BTreeMap::new();
        flatten_json("", &doc, &mut leaves);
        Ok(leaves)
    };
    let a = load(a_path)?;
    let b = load(b_path)?;
    let mut changed = 0usize;
    let mut unchanged = 0usize;
    for (path, va) in &a {
        match b.get(path) {
            None => {
                changed += 1;
                println!("- {path} = {}", render_leaf(va));
            }
            Some(vb) if va == vb => unchanged += 1,
            Some(vb) => {
                changed += 1;
                match (as_number(va), as_number(vb)) {
                    (Some(na), Some(nb)) => {
                        println!(
                            "~ {path}: {} -> {} ({:+})",
                            render_leaf(va),
                            render_leaf(vb),
                            nb - na
                        );
                    }
                    _ => println!("~ {path}: {} -> {}", render_leaf(va), render_leaf(vb)),
                }
            }
        }
    }
    for (path, vb) in &b {
        if !a.contains_key(path) {
            changed += 1;
            println!("+ {path} = {}", render_leaf(vb));
        }
    }
    if changed == 0 {
        println!("identical: {unchanged} leaves agree");
        Ok(CliOutcome::Clean)
    } else {
        println!("{changed} leaves differ, {unchanged} agree");
        // Same exit class as "the assessment found something": callers
        // gating on drift want a nonzero exit without a CLI error.
        Ok(CliOutcome::Violations)
    }
}

fn cmd_models() -> Result<CliOutcome, String> {
    for uc in all_use_cases() {
        let im = uc.intrusion_model();
        println!("{:<14} {im}", uc.name());
        if !im.related_advisories.is_empty() {
            println!("{:<14}   generalizes: {}", "", im.related_advisories.join(", "));
        }
    }
    Ok(CliOutcome::Clean)
}

fn run(argv: Vec<String>) -> Result<CliOutcome, String> {
    let parsed = args::parse(argv).map_err(|e| e.to_string())?;
    // Only `trace` (action + file), `report` (action + paths), and
    // `campaign` (`resume <journal>`) take positional arguments; each
    // validates its own.
    if parsed.command != "trace" && parsed.command != "report" && parsed.command != "campaign" {
        parsed.no_positionals().map_err(|e| e.to_string())?;
    }
    match parsed.command.as_str() {
        "campaign" => cmd_campaign(&parsed),
        "run" => cmd_run(&parsed),
        "randomized" => cmd_randomized(&parsed),
        "benchmark" => cmd_benchmark(&parsed),
        "trace" => cmd_trace(&parsed),
        "report" => cmd_report(&parsed),
        "taxonomy" => {
            println!("{}", xsa_exploits::advisories::render_table1());
            Ok(CliOutcome::Clean)
        }
        "models" => cmd_models(),
        "help" | "--help" | "-h" => {
            print!("{HELP}");
            Ok(CliOutcome::Clean)
        }
        other => Err(format!("unknown command '{other}' (try 'help')")),
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let argv = if argv.is_empty() { vec!["help".to_owned()] } else { argv };
    match run(argv) {
        Ok(outcome) => outcome.exit_code(),
        // CLI errors are harness failures, same exit class as a
        // degraded campaign.
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_runs() {
        run(vec!["help".into()]).unwrap();
    }

    #[test]
    fn unknown_command_errors() {
        let err = run(vec!["bogus".into()]).unwrap_err();
        assert!(err.contains("unknown command"));
    }

    #[test]
    fn models_lists_all_use_cases() {
        cmd_models().unwrap();
        assert!(find_use_case("XSA-212-crash").is_some());
        assert!(find_use_case("xsa-182-test").is_some(), "case-insensitive");
        assert!(find_use_case("MGMT-pause").is_some());
        assert!(find_use_case("nope").is_none());
    }

    #[test]
    fn run_single_injection_cell() {
        run(vec![
            "run".into(),
            "--use-case".into(),
            "XSA-182-test".into(),
            "--version".into(),
            "4.13".into(),
            "--mode".into(),
            "injection".into(),
        ])
        .unwrap();
    }

    #[test]
    fn run_rejects_bad_version_and_mode() {
        let err = run(vec![
            "run".into(),
            "--use-case".into(),
            "XSA-182-test".into(),
            "--version".into(),
            "9.9".into(),
        ])
        .unwrap_err();
        assert!(err.contains("expected one of"));
        let err = run(vec![
            "run".into(),
            "--use-case".into(),
            "XSA-182-test".into(),
            "--mode".into(),
            "sideways".into(),
        ])
        .unwrap_err();
        assert!(err.contains("exploit|injection"));
    }

    #[test]
    fn randomized_small_sweep() {
        run(vec![
            "randomized".into(),
            "--region".into(),
            "frames".into(),
            "--trials".into(),
            "2".into(),
            "--version".into(),
            "4.13".into(),
        ])
        .unwrap();
    }

    #[test]
    fn jobs_flag_parses_and_rejects_garbage() {
        run(vec![
            "randomized".into(),
            "--trials".into(),
            "2".into(),
            "--jobs".into(),
            "2".into(),
            "--version".into(),
            "4.13".into(),
        ])
        .unwrap();
        let err = run(vec![
            "randomized".into(),
            "--jobs".into(),
            "many".into(),
        ])
        .unwrap_err();
        assert!(err.contains("--jobs"));
    }

    #[test]
    fn taxonomy_prints() {
        run(vec!["taxonomy".into()]).unwrap();
    }

    #[test]
    fn exit_outcomes_reflect_observations() {
        // The hardened version handles the injected state: exit 0.
        let outcome = run(vec![
            "run".into(),
            "--use-case".into(),
            "XSA-182-test".into(),
            "--version".into(),
            "4.13".into(),
            "--mode".into(),
            "injection".into(),
        ])
        .unwrap();
        assert_eq!(outcome, CliOutcome::Clean);
        // The vulnerable version crashes: violations, exit 1.
        let outcome = run(vec![
            "run".into(),
            "--use-case".into(),
            "XSA-212-crash".into(),
            "--version".into(),
            "4.6".into(),
            "--mode".into(),
            "injection".into(),
        ])
        .unwrap();
        assert_eq!(outcome, CliOutcome::Violations);
    }

    #[test]
    fn degradation_dominates_violations_in_exit_mapping() {
        use intrusion_core::{CampaignError, CellOutcome, CellResult, SecurityViolation};
        let cell = |violations: Vec<SecurityViolation>, error: Option<CampaignError>| CellResult {
            use_case: "t".into(),
            abusive_functionality: "f".into(),
            version: XenVersion::V4_6,
            mode: Mode::Injection,
            erroneous_state: true,
            violations,
            handled: false,
            notes: vec![],
            error,
            outcome: CellOutcome::Completed,
            attempts: 1,
            wall_time_us: 0,
            hypercalls: 0,
            phase_us: intrusion_core::PhaseTimings::default(),
            snapshot: hvsim::SnapshotStats::default(),
            tlb: hvsim::TlbStats::default(),
            flight: Vec::new(),
        };
        let violation = SecurityViolation::HypervisorCrash { message: "x".into() };
        let clean = CampaignReport::from_cells(vec![cell(vec![], None)]);
        assert_eq!(CliOutcome::for_report(&clean), CliOutcome::Clean);
        let violated = CampaignReport::from_cells(vec![cell(vec![violation.clone()], None)]);
        assert_eq!(CliOutcome::for_report(&violated), CliOutcome::Violations);
        let degraded = CampaignReport::from_cells(vec![
            cell(vec![violation], None),
            cell(vec![], Some(CampaignError::HarnessCrash { payload: "boom".into() })),
        ]);
        assert_eq!(CliOutcome::for_report(&degraded), CliOutcome::Degraded);
    }

    #[test]
    fn trace_roundtrip_via_campaign() {
        let dir = std::env::temp_dir();
        let trace = dir.join("cli_trace_roundtrip.jsonl").display().to_string();
        let metrics = dir.join("cli_metrics_roundtrip.json").display().to_string();
        run(vec![
            "campaign".into(),
            "--jobs".into(),
            "2".into(),
            "--trace-out".into(),
            trace.clone(),
            "--metrics-out".into(),
            metrics.clone(),
        ])
        .unwrap();
        run(vec!["trace".into(), "validate".into(), trace.clone()]).unwrap();
        run(vec![
            "trace".into(),
            "summary".into(),
            trace.clone(),
            "--top".into(),
            "3".into(),
        ])
        .unwrap();
        assert!(
            std::fs::read_to_string(&metrics).unwrap().contains("campaign.cells"),
            "metrics snapshot carries the campaign counters"
        );
        let err = run(vec!["trace".into(), "summary".into()]).unwrap_err();
        assert!(err.contains("file path"));
        let err = run(vec!["trace".into(), "frobnicate".into(), trace]).unwrap_err();
        assert!(err.contains("summary|validate"));
    }

    #[test]
    fn streamed_shards_merge_to_the_unsharded_report() {
        let dir = std::env::temp_dir();
        let full = dir.join("cli_stream_full.json").display().to_string();
        let s0 = dir.join("cli_stream_s0.json").display().to_string();
        let s1 = dir.join("cli_stream_s1.json").display().to_string();
        let merged = dir.join("cli_stream_merged.json").display().to_string();
        let stream = |extra: Vec<String>| {
            let mut argv = vec![
                "campaign".into(),
                "--stream".into(),
                "--jobs".into(),
                "2".into(),
                "--queue-depth".into(),
                "4".into(),
            ];
            argv.extend(extra);
            run(argv).unwrap()
        };
        let outcome = stream(vec!["--report-out".into(), full.clone()]);
        assert_eq!(outcome, CliOutcome::Violations, "vulnerable versions violate");
        stream(vec!["--shard".into(), "0/2".into(), "--report-out".into(), s0.clone()]);
        stream(vec!["--shard".into(), "1/2".into(), "--report-out".into(), s1.clone()]);
        run(vec!["report".into(), "merge".into(), merged.clone(), s0, s1]).unwrap();
        assert_eq!(
            std::fs::read_to_string(&full).unwrap(),
            std::fs::read_to_string(&merged).unwrap(),
            "merged shard reports must be byte-identical to the unsharded report"
        );
        let err = run(vec!["report".into(), "merge".into(), merged]).unwrap_err();
        assert!(err.contains("at least one input"));
        let err = run(vec!["report".into(), "explode".into()]).unwrap_err();
        assert!(err.contains("expected merge"));
        let err = run(vec!["campaign".into(), "--shard".into(), "5/2".into()]).unwrap_err();
        assert!(err.contains("--shard"));
    }

    #[test]
    fn checkpointed_run_resumes_to_the_same_report() {
        let dir = std::env::temp_dir();
        let journal = dir.join("cli_ckpt.journal").display().to_string();
        let full = dir.join("cli_ckpt_full.json").display().to_string();
        let resumed = dir.join("cli_ckpt_resumed.json").display().to_string();
        // A full checkpointed run with the opt-in forensic sidecar: the
        // journal ends complete and the sidecar holds slot records.
        let outcome = run(vec![
            "campaign".into(),
            "--checkpoint".into(),
            journal.clone(),
            "--checkpoint-interval".into(),
            "4".into(),
            "--journal-slots".into(),
            "--jobs".into(),
            "2".into(),
            "--report-out".into(),
            full.clone(),
        ])
        .unwrap();
        assert_eq!(outcome, CliOutcome::Violations);
        let sidecar = std::fs::read_to_string(format!("{journal}.slots")).unwrap();
        assert!(sidecar.contains("journal/slot"), "--journal-slots streams forensics");
        // Tear the journal's tail (simulating a mid-write kill), then
        // resume: the normalized report must come back byte-identical.
        let bytes = std::fs::read(&journal).unwrap();
        std::fs::write(&journal, &bytes[..bytes.len() - bytes.len() / 4]).unwrap();
        let outcome = run(vec![
            "campaign".into(),
            "resume".into(),
            journal.clone(),
            "--jobs".into(),
            "2".into(),
            "--report-out".into(),
            resumed.clone(),
        ])
        .unwrap();
        assert_eq!(outcome, CliOutcome::Violations);
        assert_eq!(
            std::fs::read_to_string(&full).unwrap(),
            std::fs::read_to_string(&resumed).unwrap(),
            "resumed report must be byte-identical to the uninterrupted one"
        );
        // Resuming something that is not a journal fails loudly.
        let not_journal = dir.join("cli_ckpt_not_a_journal").display().to_string();
        std::fs::write(&not_journal, "definitely not a journal\n").unwrap();
        let err = run(vec!["campaign".into(), "resume".into(), not_journal]).unwrap_err();
        assert!(err.contains("journal"), "non-journals are rejected: {err}");
        let err = run(vec!["campaign".into(), "resume".into()]).unwrap_err();
        assert!(err.contains("journal path"));
        let err = run(vec!["campaign".into(), "sideways".into()]).unwrap_err();
        assert!(err.contains("unexpected argument"));
        for stale in [journal.clone(), format!("{journal}.slots"), full, resumed] {
            std::fs::remove_file(stale).ok();
        }
    }

    #[test]
    fn report_merge_refuses_mismatched_or_overlapping_inputs() {
        let dir = std::env::temp_dir();
        let a = dir.join("cli_merge_a.json").display().to_string();
        let merged = dir.join("cli_merge_out.json").display().to_string();
        run(vec![
            "campaign".into(),
            "--stream".into(),
            "--jobs".into(),
            "2".into(),
            "--shard".into(),
            "0/2".into(),
            "--report-out".into(),
            a.clone(),
        ])
        .unwrap();
        // The same shard twice would double-count every slot.
        let err =
            run(vec!["report".into(), "merge".into(), merged, a.clone(), a]).unwrap_err();
        assert!(err.contains("overlap"), "overlap is refused loudly: {err}");
    }

    #[test]
    fn chaos_seed_runs_deterministically_degraded() {
        let dir = std::env::temp_dir();
        let r1 = dir.join("cli_chaos_1.json").display().to_string();
        let r8 = dir.join("cli_chaos_8.json").display().to_string();
        let chaos = |jobs: &str, out: &str| {
            run(vec![
                "campaign".into(),
                "--chaos-seed".into(),
                "7".into(),
                "--jobs".into(),
                jobs.into(),
                "--report-out".into(),
                out.into(),
            ])
            .unwrap()
        };
        assert_eq!(chaos("1", &r1), CliOutcome::Degraded, "chaos degrades the run: exit 2");
        assert_eq!(chaos("8", &r8), CliOutcome::Degraded);
        assert_eq!(
            std::fs::read_to_string(&r1).unwrap(),
            std::fs::read_to_string(&r8).unwrap(),
            "seeded chaos is schedule-independent: jobs 1 and 8 agree byte-for-byte"
        );
        let err = run(vec!["campaign".into(), "--chaos-seed".into(), "soon".into()]).unwrap_err();
        assert!(err.contains("--chaos-seed"));
    }

    #[test]
    fn trace_validate_reports_every_bad_line() {
        let dir = std::env::temp_dir();
        let path = dir.join("cli_trace_corrupt.jsonl").display().to_string();
        // Two valid lines from a real tracer, two corrupted lines
        // interleaved: validate must report both with line numbers.
        let tracer = Tracer::enabled();
        drop(tracer.ctx(1).span("cell"));
        let valid = to_jsonl(&tracer.drain());
        let mut lines = valid.lines();
        let first = lines.next().unwrap();
        let second = lines.next().unwrap();
        let text = format!("{first}\nthis is not json\n{second}\n{{\"shard\":1}}\n");
        std::fs::write(&path, text).unwrap();
        let err = run(vec!["trace".into(), "validate".into(), path.clone()]).unwrap_err();
        assert!(err.contains("2 invalid line(s) out of 4"), "all bad lines counted: {err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn report_diff_flags_changes_and_identity() {
        let dir = std::env::temp_dir();
        let a = dir.join("cli_diff_a.json").display().to_string();
        let b = dir.join("cli_diff_b.json").display().to_string();
        std::fs::write(&a, r#"{"cells":3,"degraded":0,"tag":"x","gone":1}"#).unwrap();
        std::fs::write(&b, r#"{"cells":5,"degraded":0,"tag":"y","new":[1,2]}"#).unwrap();
        let outcome =
            run(vec!["report".into(), "diff".into(), a.clone(), b.clone()]).unwrap();
        assert_eq!(outcome, CliOutcome::Violations, "differing documents exit 1");
        let outcome = run(vec!["report".into(), "diff".into(), a.clone(), a.clone()]).unwrap();
        assert_eq!(outcome, CliOutcome::Clean, "a document never differs from itself");
        let err = run(vec!["report".into(), "diff".into(), a.clone()]).unwrap_err();
        assert!(err.contains("two paths"));
        let err = run(vec!["report".into(), "diff".into(), a.clone(), b, a]).unwrap_err();
        assert!(err.contains("unexpected argument"));
        let not_json = dir.join("cli_diff_nj.json").display().to_string();
        std::fs::write(&not_json, "][").unwrap();
        let err =
            run(vec!["report".into(), "diff".into(), not_json.clone(), not_json]).unwrap_err();
        assert!(err.contains("not JSON"));
    }

    #[test]
    fn chaos_run_writes_flight_dumps_and_timeline() {
        let dir = std::env::temp_dir().join("cli_flight_dumps");
        std::fs::remove_dir_all(&dir).ok();
        let dumps = dir.display().to_string();
        let timeline = std::env::temp_dir().join("cli_timeline.jsonl").display().to_string();
        let outcome = run(vec![
            "campaign".into(),
            "--chaos-seed".into(),
            "7".into(),
            "--jobs".into(),
            "2".into(),
            "--progress".into(),
            "--flight-out".into(),
            dumps.clone(),
            "--timeline-out".into(),
            timeline.clone(),
            "--metrics-interval-ms".into(),
            "25".into(),
        ])
        .unwrap();
        assert_eq!(outcome, CliOutcome::Degraded, "seed 7 degrades cells");
        // Every degraded slot carries a non-empty, schema-valid dump.
        let mut dump_files = 0usize;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let path = entry.unwrap().path();
            let name = path.file_name().unwrap().to_string_lossy().to_string();
            if !name.starts_with("slot-") {
                continue;
            }
            dump_files += 1;
            assert!(std::fs::metadata(&path).unwrap().len() > 0, "{name} must not be empty");
            run(vec!["trace".into(), "validate".into(), path.display().to_string()])
                .expect("flight dumps are trace-schema JSONL");
        }
        assert!(dump_files > 0, "a degraded chaos run must leave forensic dumps");
        let samples = std::fs::read_to_string(&timeline).unwrap();
        assert!(samples.contains("progress.done"), "timeline carries progress: {samples}");
        assert!(samples.contains("queue.depth"), "timeline carries stream gauges");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_file(timeline).ok();
        let err = run(vec![
            "campaign".into(),
            "--metrics-interval-ms".into(),
            "0".into(),
        ])
        .unwrap_err();
        assert!(err.contains("--metrics-interval-ms"));
        let err =
            run(vec!["campaign".into(), "--flight-capacity".into(), "big".into()]).unwrap_err();
        assert!(err.contains("--flight-capacity"));
    }

    #[test]
    fn fault_containment_flags_parse_and_reject_garbage() {
        run(vec![
            "randomized".into(),
            "--trials".into(),
            "2".into(),
            "--version".into(),
            "4.13".into(),
            "--retries".into(),
            "1".into(),
        ])
        .unwrap();
        let err = run(vec!["randomized".into(), "--retries".into(), "lots".into()]).unwrap_err();
        assert!(err.contains("--retries"));
        let err =
            run(vec!["campaign".into(), "--cell-deadline-ms".into(), "soon".into()]).unwrap_err();
        assert!(err.contains("--cell-deadline-ms"));
    }
}
