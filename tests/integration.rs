//! Cross-crate integration tests: the full stack (machine memory →
//! paging → hypervisor → guests → intrusion tooling) wired together in
//! ways the per-crate unit tests do not cover.

use intrusion_core::campaign::standard_world;
use intrusion_core::{
    ArbitraryAccessInjector, ErroneousStateSpec, Injector, Monitor, RandomizedCampaign,
    SecurityViolation, TargetRegion, ThreatChain, ThreatStage,
};
use guestos::{TxnStore, Uid, WorldBuilder};
use hvsim::{AccessMode, AuditEvent, XenVersion};
use hvsim_mem::{Pfn, VirtAddr};

#[test]
fn worlds_boot_identically_across_versions() {
    // The paper keeps every environmental aspect identical except the
    // version; so must the simulator.
    let mut layouts = Vec::new();
    for version in XenVersion::ALL {
        let w = standard_world(version, true).unwrap();
        assert_eq!(w.domains().len(), 3);
        let per_domain: Vec<(String, usize)> = w
            .domains()
            .iter()
            .map(|&d| {
                let dom = w.hv().domain(d).unwrap();
                (dom.name().to_owned(), dom.p2m_len())
            })
            .collect();
        layouts.push(per_domain);
    }
    assert!(layouts.windows(2).all(|w| w[0] == w[1]), "identical memory layouts");
}

#[test]
fn injector_activity_is_fully_audited() {
    let mut w = standard_world(XenVersion::V4_8, true).unwrap();
    let attacker = w.domain_by_name("guest03").unwrap();
    let spec = ErroneousStateSpec::OverwriteIdtGate {
        cpu: 0,
        vector: 99,
        value: 0x1234,
    };
    ArbitraryAccessInjector.inject(&mut w, attacker, &spec).unwrap();
    let injector_events = w
        .hv()
        .audit()
        .events()
        .iter()
        .filter(|e| matches!(e, AuditEvent::InjectorAccess { .. }))
        .count();
    assert!(injector_events >= 1, "injection leaves an audit trail");
    let hv_writes = w
        .hv()
        .audit()
        .events()
        .iter()
        .any(|e| matches!(e, AuditEvent::HypervisorWrite { .. }));
    assert!(hv_writes);
}

#[test]
fn threat_chain_can_be_reconstructed_from_a_run() {
    let mut w = standard_world(XenVersion::V4_6, true).unwrap();
    let attacker = w.domain_by_name("guest03").unwrap();
    let spec = ErroneousStateSpec::OverwriteIdtGate {
        cpu: 0,
        vector: 14,
        value: 0x41,
    };
    ArbitraryAccessInjector.inject(&mut w, attacker, &spec).unwrap();
    let mut buf = [0u8; 1];
    let _ = w
        .hv_mut()
        .guest_read_va(attacker, VirtAddr::new(0x7f00_0000_0000), &mut buf);

    let mut chain = ThreatChain::new();
    chain.push(
        ThreatStage::INJECTION_ENTRY,
        "injector overwrote the #PF gate",
    );
    if w.hv().is_crashed() {
        chain.push(ThreatStage::SecurityViolation, "double fault panic");
    } else {
        chain.push(ThreatStage::Handled, "fault delivered normally");
    }
    assert!(chain.violated());
    assert_eq!(chain.entry_stage(), Some(ThreatStage::ErroneousState));
}

#[test]
fn monitors_compose_over_multiple_simultaneous_violations() {
    let mut w = standard_world(XenVersion::V4_6, true).unwrap();
    let attacker = w.domain_by_name("guest03").unwrap();
    // Violation 1: cross-domain retained access.
    let dom0 = w.dom0();
    let foreign = w.hv().domain(dom0).unwrap().p2m(Pfn::new(9)).unwrap();
    w.hv_mut().inject_retain_access(attacker, foreign).unwrap();
    // Violation 2: crash.
    w.hv_mut().crash("test panic");
    let obs = Monitor::standard().observe(&w);
    assert!(obs
        .violations
        .iter()
        .any(|v| matches!(v, SecurityViolation::CrossDomainAccess { .. })));
    assert!(obs
        .violations
        .iter()
        .any(|v| matches!(v, SecurityViolation::HypervisorCrash { .. })));
}

#[test]
fn txn_store_survives_unrelated_injections() {
    // Corrupting *another* guest's memory must not affect the store:
    // isolation of the workload itself.
    let mut w = WorldBuilder::new(XenVersion::V4_13)
        .injector(true)
        .guest("app", 64)
        .guest("evil", 64)
        .build()
        .unwrap();
    let app = w.domain_by_name("app").unwrap();
    let evil = w.domain_by_name("evil").unwrap();
    let store = TxnStore::create(&mut w, app, 16).unwrap();
    for k in 1..=10 {
        store.put(&mut w, k, k * 7).unwrap();
    }
    // Inject into the attacker's own frames.
    let own = w.hv().domain(evil).unwrap().p2m(Pfn::new(10)).unwrap();
    let spec = ErroneousStateSpec::WriteFrame {
        mfn: own,
        offset: 0,
        bytes: vec![0xff; 64],
    };
    ArbitraryAccessInjector.inject(&mut w, evil, &spec).unwrap();
    let report = store.check(&mut w).unwrap();
    assert!(report.is_consistent());
    assert_eq!(store.get(&mut w, 5).unwrap(), Some(35));
}

#[test]
fn randomized_campaigns_run_on_all_regions_and_versions() {
    for version in XenVersion::ALL {
        for region in [
            TargetRegion::IdtGates { cpu: 0 },
            TargetRegion::SharedL3,
            TargetRegion::DomainPageTables,
            TargetRegion::DomainFrames,
        ] {
            let (summary, outcomes) = RandomizedCampaign::new(region, 4, 11)
                .run(|| {
                    let w = standard_world(version, true)?;
                    let a = w.domain_by_name("guest03").unwrap();
                    Ok((w, a))
                })
                .unwrap();
            assert_eq!(summary.total, 4);
            assert_eq!(outcomes.len(), 4);
        }
    }
}

#[test]
fn crashed_world_rejects_everything_gracefully() {
    let mut w = standard_world(XenVersion::V4_6, true).unwrap();
    let attacker = w.domain_by_name("guest03").unwrap();
    w.hv_mut().crash("test");
    // Hypercalls fail with Crashed, not panics.
    let mut data = vec![0u8; 8];
    assert!(w
        .hv_mut()
        .hc_arbitrary_access(attacker, 0, &mut data, AccessMode::PhysRead)
        .is_err());
    assert!(w.hv_mut().hc_console_io(attacker, "hello").is_err());
    assert!(w.tick_vdso().is_empty());
    // Monitoring still works.
    let obs = Monitor::standard().observe(&w);
    assert!(!obs.is_clean());
}

#[test]
fn full_stack_shell_pipeline() {
    // Backdoor -> reverse shell -> command execution -> permission model,
    // end to end on the hardened version (the XSA-148 injection path).
    let mut w = standard_world(XenVersion::V4_13, true).unwrap();
    let attacker = w.domain_by_name("guest03").unwrap();
    let outcome = intrusion_core::UseCase::run_injection(
        &xsa_exploits::Xsa148Priv,
        &mut w,
        attacker,
        &ArbitraryAccessInjector,
    );
    assert!(outcome.erroneous_state);
    let sid = {
        let sessions = w.remote().sessions();
        assert!(!sessions.is_empty());
        guestos::SessionId(0)
    };
    // Root can read the secret; the user running bash in a guest cannot.
    let out = w.shell_exec(sid, "cat /root/root_msg").unwrap();
    assert_eq!(out, "Confidential content in root folder!");
    let listing = w.shell_exec(sid, "ls /root").unwrap();
    assert!(listing.contains("/root/root_msg"));
}

#[test]
fn dispatch_interface_equivalent_to_direct_calls() {
    // The uniform Hypercall dispatcher and the typed methods must agree.
    let mut w1 = standard_world(XenVersion::V4_8, true).unwrap();
    let mut w2 = standard_world(XenVersion::V4_8, true).unwrap();
    let a1 = w1.domain_by_name("guest03").unwrap();
    let a2 = w2.domain_by_name("guest03").unwrap();
    let gate = w1.hv().sidt(0).offset(14 * 16);

    let mut call = hvsim::Hypercall::ArbitraryAccess {
        addr: gate.raw(),
        data: 0xdeadu64.to_le_bytes().to_vec(),
        mode: AccessMode::LinearWrite,
    };
    w1.hv_mut().dispatch(a1, &mut call).unwrap();
    let mut data = 0xdeadu64.to_le_bytes().to_vec();
    w2.hv_mut()
        .hc_arbitrary_access(a2, gate.raw(), &mut data, AccessMode::LinearWrite)
        .unwrap();

    let g1 = w1.hv().idt_entry(0, 14).unwrap();
    let g2 = w2.hv().idt_entry(0, 14).unwrap();
    assert_eq!(g1, g2);
}

#[test]
fn non_root_backdoor_sessions_are_not_privilege_escalations() {
    // A guest user process tripping a backdoor yields a non-root shell;
    // the monitor must not report a root-shell violation.
    let mut w = standard_world(XenVersion::V4_8, true).unwrap();
    w.remote_mut().listen();
    let guest = w.domain_by_name("xen2").unwrap();
    let vdso = w.kernel(guest).unwrap().vdso_mfn(w.hv()).unwrap();
    let backdoor = guestos::Backdoor {
        host: w.remote().host().to_owned(),
        port: w.remote().port(),
    };
    let attacker = w.domain_by_name("guest03").unwrap();
    let mut blob = backdoor.to_bytes();
    w.hv_mut()
        .hc_arbitrary_access(
            attacker,
            vdso.base().offset(guestos::VDSO_ENTRY_OFFSET as u64).raw(),
            &mut blob,
            AccessMode::PhysWrite,
        )
        .unwrap();
    let sessions = w.tick_vdso();
    // xen2's vdso-calling process is the unprivileged bash user.
    assert!(!sessions.is_empty());
    assert!(w.remote().sessions().iter().all(|s| s.domain != w.dom0()));
    let violations = Monitor::standard().observe(&w);
    assert!(
        !violations
            .violations
            .iter()
            .any(|v| matches!(v, SecurityViolation::RemoteRootShell { .. })),
        "user shell is not a root-shell violation"
    );
    // But it is still a shell: whoami says user1000.
    let out = w.shell_exec(sessions[0], "whoami").unwrap();
    assert_eq!(out, Uid::new(1000).name());
}
