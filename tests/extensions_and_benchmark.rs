//! Integration tests for the extension subsystems: event channels,
//! the management interface, both injector implementations, the
//! PV-invariant detector, and the security benchmark — all exercised
//! through the full World stack.

use intrusion_core::campaign::standard_world;
use intrusion_core::monitor::{PvInvariantDetector, SpuriousInterruptDetector, UnexpectedPauseDetector};
use intrusion_core::{
    ArbitraryAccessInjector, Campaign, DebugStubInjector, Detector, ErroneousStateSpec, Injector,
    Mode, Monitor, SecurityAttribute, SecurityBenchmark, SecurityViolation, UseCase,
};
use guestos::World;
use hvsim::{DomctlOp, EventChannelOp, XenVersion};
use hvsim_mem::DomainId;
use xsa_exploits::{extension_use_cases, paper_use_cases, EvtchnStorm, MgmtPause};

fn attacker(world: &World) -> DomainId {
    world.domain_by_name("guest03").unwrap()
}

#[test]
fn event_channels_work_across_the_world() {
    let mut w = standard_world(XenVersion::V4_13, false).unwrap();
    let a = attacker(&w);
    let dom0 = w.dom0();
    // dom0 allocates a port for the guest; the guest binds and signals.
    let rp = w
        .hv_mut()
        .hc_event_channel_op(dom0, EventChannelOp::AllocUnbound { remote: a })
        .unwrap() as u16;
    let lp = w
        .hv_mut()
        .hc_event_channel_op(a, EventChannelOp::BindInterdomain { remote: dom0, remote_port: rp })
        .unwrap() as u16;
    w.hv_mut().hc_event_channel_op(a, EventChannelOp::Send { port: lp }).unwrap();
    assert_eq!(w.hv().pending_ports(dom0), vec![rp]);
    // Legitimate traffic is not flagged by the spurious detector.
    assert!(SpuriousInterruptDetector.observe(&w).is_empty());
}

#[test]
fn injected_interrupt_state_equals_exploited_interrupt_state() {
    // The interrupt-IM analogue of the paper's equivalence argument:
    // the spurious-pending shape induced by the vulnerable hypercall on
    // 4.6 can be injected verbatim on 4.13.
    let mut vulnerable = standard_world(XenVersion::V4_6, false).unwrap();
    let a = attacker(&vulnerable);
    EvtchnStorm.run_exploit(&mut vulnerable, a);
    let victim_states: Vec<(DomainId, Vec<u16>)> = vulnerable
        .domains()
        .into_iter()
        .map(|d| (d, vulnerable.hv().spurious_pending_ports(d)))
        .filter(|(_, p)| !p.is_empty())
        .collect();
    assert!(!victim_states.is_empty());

    let mut hardened = standard_world(XenVersion::V4_13, true).unwrap();
    let a = attacker(&hardened);
    for (dom, ports) in &victim_states {
        let spec = ErroneousStateSpec::SpuriousPendingEvents {
            dom: *dom,
            ports: ports.clone(),
        };
        ArbitraryAccessInjector.inject(&mut hardened, a, &spec).unwrap();
    }
    for (dom, ports) in &victim_states {
        assert_eq!(&hardened.hv().spurious_pending_ports(*dom), ports);
    }
}

#[test]
fn management_interface_privileges_hold_across_world() {
    let mut w = standard_world(XenVersion::V4_8, false).unwrap();
    let a = attacker(&w);
    let dom0 = w.dom0();
    let xen2 = w.domain_by_name("xen2").unwrap();
    // dom0 may pause guests; guests may not touch each other.
    w.hv_mut().hc_domctl(dom0, xen2, DomctlOp::Pause).unwrap();
    assert!(w.hv().domain(xen2).unwrap().is_paused());
    w.hv_mut().hc_domctl(dom0, xen2, DomctlOp::Unpause).unwrap();
    assert!(w.hv_mut().hc_domctl(a, xen2, DomctlOp::Pause).is_err());
    assert!(UnexpectedPauseDetector.observe(&w).is_empty());
}

#[test]
fn pv_invariant_detector_surfaces_latent_states() {
    // Inject a state that causes no externally visible violation yet —
    // the invariant detector still reports it.
    let mut w = standard_world(XenVersion::V4_8, true).unwrap();
    let a = attacker(&w);
    let l4 = w.hv().domain(a).unwrap().cr3().unwrap();
    // Install an RO self-map legitimately, then inject RW.
    let ptr = l4.base().offset(42 * 8).raw();
    let entry = hvsim::PageTableEntry::new(
        l4,
        hvsim::PteFlags::PRESENT | hvsim::PteFlags::USER,
    );
    w.hv_mut()
        .hc_mmu_update(a, &[hvsim::MmuUpdate::normal(ptr, entry.raw())])
        .unwrap();
    let spec = ErroneousStateSpec::SetL4EntryRw { l4, index: 42 };
    ArbitraryAccessInjector.inject(&mut w, a, &spec).unwrap();
    let violations = PvInvariantDetector.observe(&w);
    assert!(
        violations
            .iter()
            .any(|v| matches!(v, SecurityViolation::IntegrityLoss { what } if what.contains("self-map"))),
        "latent writable self-map detected: {violations:?}"
    );
}

#[test]
fn both_injectors_drive_a_full_use_case_identically() {
    for injector in [&ArbitraryAccessInjector as &dyn Injector, &DebugStubInjector] {
        let mut w = standard_world(XenVersion::V4_13, true).unwrap();
        let a = attacker(&w);
        let outcome = xsa_exploits::Xsa182Test.run_injection(&mut w, a, injector);
        assert!(outcome.erroneous_state, "{}", injector.name());
        // Hardened 4.13 handles the state regardless of how it got there.
        let obs = xsa_exploits::Xsa182Test.monitor(&w, a).observe(&w);
        assert!(obs.is_clean(), "{}: {:?}", injector.name(), obs.violations);
    }
}

#[test]
fn debug_stub_injector_on_stock_hardened_build() {
    // The intrusiveness tradeoff of §IX-D, demonstrated: a stock 4.13
    // build (no injector hypercall) can still be assessed via the debug
    // stub.
    let mut w = standard_world(XenVersion::V4_13, false).unwrap();
    let a = attacker(&w);
    let outcome = xsa_exploits::Xsa212Crash.run_injection(&mut w, a, &DebugStubInjector);
    assert!(outcome.erroneous_state);
    assert!(w.hv().is_crashed());
}

#[test]
fn extended_campaign_and_benchmark() {
    let mut campaign = Campaign::new();
    for uc in paper_use_cases().into_iter().chain(extension_use_cases()) {
        campaign = campaign.with_use_case(uc);
    }
    let report = campaign.run();
    assert_eq!(report.cells().len(), 8 * 3 * 2);

    // The extension cells behave as designed.
    for version in XenVersion::ALL {
        let storm = report.cell("EVTCHN-storm", version, Mode::Injection).unwrap();
        assert!(storm.erroneous_state, "storm injection on {version}");
        assert!(storm.violated(), "storm violation on {version}");
        let pause = report.cell("MGMT-pause", version, Mode::Injection).unwrap();
        assert!(pause.erroneous_state && pause.violated(), "pause on {version}");
        let pause_exploit = report.cell("MGMT-pause", version, Mode::Exploit).unwrap();
        assert!(!pause_exploit.erroneous_state, "no mgmt exploit path on {version}");
    }
    // Storm exploit only on 4.6.
    assert!(report.cell("EVTCHN-storm", XenVersion::V4_6, Mode::Exploit).unwrap().erroneous_state);
    assert!(!report.cell("EVTCHN-storm", XenVersion::V4_8, Mode::Exploit).unwrap().erroneous_state);

    // Benchmark: 4.13 ranks first, with availability hits from the
    // unshielded interrupt/pause states.
    let benchmark = SecurityBenchmark::from_report(&report);
    let ranking = benchmark.ranking();
    assert_eq!(ranking[0].0, XenVersion::V4_13);
    assert!(ranking[0].1 > ranking[1].1);
    let s13 = benchmark.version(XenVersion::V4_13).unwrap();
    assert_eq!(s13.assessed, 8);
    assert_eq!(s13.handled, 2, "the two Table III shields");
    assert!(s13.attribute_hits[&SecurityAttribute::Availability] >= 2);
}

#[test]
fn monitors_for_new_violations_render() {
    let mut w = standard_world(XenVersion::V4_6, true).unwrap();
    let a = attacker(&w);
    let dom0 = w.dom0();
    ArbitraryAccessInjector
        .inject(&mut w, a, &ErroneousStateSpec::ForcePause { dom: dom0 })
        .unwrap();
    let obs = Monitor::new().with(Box::new(UnexpectedPauseDetector)).observe(&w);
    assert_eq!(obs.violations.len(), 1);
    assert!(obs.violations[0].to_string().contains("availability loss"));
}

#[test]
fn mgmt_pause_monitor_is_quiet_without_injection() {
    let w = standard_world(XenVersion::V4_13, true).unwrap();
    let a = attacker(&w);
    let obs = MgmtPause.monitor(&w, a).observe(&w);
    assert!(obs.is_clean());
}
