//! The headline reproduction test: the full campaign must reproduce the
//! paper's Table III and the §VI/§VII/§VIII findings cell by cell.
//!
//! Paper ground truth:
//!
//! * exploits succeed **only** on Xen 4.6 (RQ1 setup / §VII);
//! * injections induce the erroneous state on **all** versions (RQ2);
//! * security violations (Table III):
//!   - Xen 4.8: all four use cases violate;
//!   - Xen 4.13: XSA-212-crash and XSA-148-priv violate, while
//!     XSA-212-priv and XSA-182-test are *handled* (the shield).

use intrusion_core::{Campaign, CampaignReport, Mode};
use hvsim::XenVersion;
use xsa_exploits::paper_use_cases;

fn run_full_campaign() -> CampaignReport {
    let mut campaign = Campaign::new();
    for uc in paper_use_cases() {
        campaign = campaign.with_use_case(uc);
    }
    campaign.run()
}

const USE_CASES: [&str; 4] = [
    "XSA-212-crash",
    "XSA-212-priv",
    "XSA-148-priv",
    "XSA-182-test",
];

#[test]
fn full_campaign_reproduces_paper_tables() {
    let report = run_full_campaign();
    assert_eq!(report.cells().len(), 24, "4 use cases x 3 versions x 2 modes");

    // --- RQ1: exploits on the vulnerable version induce state + violation.
    for uc in USE_CASES {
        let cell = report.cell(uc, XenVersion::V4_6, Mode::Exploit).unwrap();
        assert!(cell.erroneous_state, "{uc} exploit state on 4.6");
        assert!(cell.violated(), "{uc} exploit violation on 4.6");
    }

    // --- exploits fail everywhere else (vulnerabilities fixed).
    for uc in USE_CASES {
        for version in [XenVersion::V4_8, XenVersion::V4_13] {
            let cell = report.cell(uc, version, Mode::Exploit).unwrap();
            assert!(!cell.erroneous_state, "{uc} exploit must fail on {version}");
            assert!(!cell.violated(), "{uc} no violation on {version}");
            assert!(cell.error.is_some(), "{uc} reports its failure on {version}");
        }
    }

    // --- RQ1 (injection side): injection reproduces state + violation on 4.6.
    for uc in USE_CASES {
        let cell = report.cell(uc, XenVersion::V4_6, Mode::Injection).unwrap();
        assert!(cell.erroneous_state, "{uc} injected state on 4.6");
        assert!(cell.violated(), "{uc} injected violation on 4.6");
    }

    // --- RQ2: erroneous states injectable on every version (Table III
    //     "Err. State" columns are all checks).
    for uc in USE_CASES {
        for version in [XenVersion::V4_8, XenVersion::V4_13] {
            let cell = report.cell(uc, version, Mode::Injection).unwrap();
            assert!(cell.erroneous_state, "{uc} injected state on {version}");
        }
    }

    // --- RQ3 / Table III "Sec. Viol." columns.
    // Xen 4.8: every injected state leads to the violation.
    for uc in USE_CASES {
        let cell = report.cell(uc, XenVersion::V4_8, Mode::Injection).unwrap();
        assert!(cell.violated(), "{uc} violation on 4.8");
        assert!(!cell.handled, "{uc} not handled on 4.8");
    }
    // Xen 4.13: crash and 148-priv violate; 212-priv and 182-test are
    // handled by the post-XSA-213 hardening.
    for (uc, expect_violation) in [
        ("XSA-212-crash", true),
        ("XSA-212-priv", false),
        ("XSA-148-priv", true),
        ("XSA-182-test", false),
    ] {
        let cell = report.cell(uc, XenVersion::V4_13, Mode::Injection).unwrap();
        assert_eq!(cell.violated(), expect_violation, "{uc} violation on 4.13");
        assert_eq!(cell.handled, !expect_violation, "{uc} shield on 4.13");
    }
}

#[test]
fn rendered_table3_shows_shields_for_handled_states() {
    let report = run_full_campaign();
    let table3 = report.render_table3();
    // Structural checks on the rendered artefact.
    for uc in USE_CASES {
        assert!(table3.contains(uc), "row for {uc}");
    }
    assert!(table3.contains('\u{2713}'), "check marks present");
    assert!(table3.contains('\u{1F6E1}'), "shield present (4.13 handled cells)");
    // Exactly two shields: XSA-212-priv and XSA-182-test on 4.13.
    assert_eq!(table3.matches('\u{1F6E1}').count(), 2, "table:\n{table3}");
}

#[test]
fn fig4_reports_exploit_injection_equivalence_on_4_6() {
    let report = run_full_campaign();
    let fig4 = report.render_fig4();
    for uc in USE_CASES {
        assert!(fig4.contains(uc));
    }
    assert!(!fig4.contains("NO"), "all four cases equivalent:\n{fig4}");
}

#[test]
fn table2_maps_use_cases_to_paper_functionalities() {
    let report = run_full_campaign();
    let t2 = report.render_table2();
    assert!(t2.contains("XSA-212-crash"));
    assert!(t2.contains("Write Unauthorized Arbitrary Memory"));
    assert!(t2.contains("Guest-Writable Page Table Entry"));
}

#[test]
fn campaign_report_serializes() {
    let report = Campaign::new()
        .with_use_case(Box::new(xsa_exploits::Xsa182Test))
        .versions(&[XenVersion::V4_13])
        .run();
    let json = report.to_json().unwrap();
    assert!(json.contains("XSA-182-test"));
    assert!(json.contains("\"version\""));
}
